//! IGMPv2 (RFC 2236). 56% of lab devices emit IGMP (§4.1) to join the mDNS
//! (224.0.0.251) and SSDP (239.255.255.250) multicast groups.

use crate::field::{self, Field};
use crate::{checksum, Error, Result};
use std::net::Ipv4Addr;

/// IGMPv2 message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    MembershipQuery { group: Ipv4Addr, max_resp_ds: u8 },
    MembershipReportV2 { group: Ipv4Addr },
    LeaveGroup { group: Ipv4Addr },
    /// IGMPv3 report, summarized (type 0x22).
    MembershipReportV3 { group_count: u16 },
}

mod layout {
    use super::Field;
    pub const TYPE: usize = 0;
    pub const MAX_RESP: usize = 1;
    pub const CHECKSUM: Field = 2..4;
    pub const GROUP: Field = 4..8;
}

/// IGMPv2 packet length.
pub const PACKET_LEN: usize = 8;

/// A view of an IGMP packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        if buffer.as_ref().len() < PACKET_LEN {
            return Err(Error::Truncated);
        }
        Ok(Packet { buffer })
    }

    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[layout::TYPE]
    }

    pub fn max_resp(&self) -> u8 {
        self.buffer.as_ref()[layout::MAX_RESP]
    }

    pub fn group_addr(&self) -> Ipv4Addr {
        let b = &self.buffer.as_ref()[layout::GROUP];
        Ipv4Addr::new(b[0], b[1], b[2], b[3])
    }

    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    pub fn set_msg_type(&mut self, value: u8) {
        self.buffer.as_mut()[layout::TYPE] = value;
    }

    pub fn set_max_resp(&mut self, value: u8) {
        self.buffer.as_mut()[layout::MAX_RESP] = value;
    }

    pub fn set_group_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[layout::GROUP].copy_from_slice(&value.octets());
    }

    pub fn fill_checksum(&mut self) {
        field::write_u16(self.buffer.as_mut(), layout::CHECKSUM.start, 0);
        let ck = checksum::checksum(self.buffer.as_ref());
        field::write_u16(self.buffer.as_mut(), layout::CHECKSUM.start, ck);
    }
}

/// High-level representation of an IGMP message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub message: Message,
}

impl Repr {
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        let message = match packet.msg_type() {
            0x11 => Message::MembershipQuery {
                group: packet.group_addr(),
                max_resp_ds: packet.max_resp(),
            },
            0x16 => Message::MembershipReportV2 {
                group: packet.group_addr(),
            },
            0x17 => Message::LeaveGroup {
                group: packet.group_addr(),
            },
            0x22 => {
                let count =
                    field::read_u16(packet.buffer.as_ref(), layout::GROUP.start + 2)?;
                Message::MembershipReportV3 { group_count: count }
            }
            _ => return Err(Error::Unsupported),
        };
        Ok(Repr { message })
    }

    pub const fn buffer_len(&self) -> usize {
        PACKET_LEN
    }

    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        match self.message {
            Message::MembershipQuery { group, max_resp_ds } => {
                packet.set_msg_type(0x11);
                packet.set_max_resp(max_resp_ds);
                packet.set_group_addr(group);
            }
            Message::MembershipReportV2 { group } => {
                packet.set_msg_type(0x16);
                packet.set_max_resp(0);
                packet.set_group_addr(group);
            }
            Message::LeaveGroup { group } => {
                packet.set_msg_type(0x17);
                packet.set_max_resp(0);
                packet.set_group_addr(group);
            }
            Message::MembershipReportV3 { group_count } => {
                packet.set_msg_type(0x22);
                packet.set_max_resp(0);
                packet.set_group_addr(Ipv4Addr::UNSPECIFIED);
                field::write_u16(
                    packet.buffer.as_mut(),
                    layout::GROUP.start + 2,
                    group_count,
                );
            }
        }
        packet.fill_checksum();
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buffer = vec![0u8; PACKET_LEN];
        let mut packet = Packet::new_unchecked(&mut buffer[..]);
        self.emit(&mut packet);
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_mdns_group_roundtrip() {
        let repr = Repr {
            message: Message::MembershipReportV2 {
                group: Ipv4Addr::new(224, 0, 0, 251),
            },
        };
        let bytes = repr.to_bytes();
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn query_and_leave() {
        for message in [
            Message::MembershipQuery {
                group: Ipv4Addr::UNSPECIFIED,
                max_resp_ds: 100,
            },
            Message::LeaveGroup {
                group: Ipv4Addr::new(239, 255, 255, 250),
            },
            Message::MembershipReportV3 { group_count: 2 },
        ] {
            let repr = Repr { message };
            let bytes = repr.to_bytes();
            assert_eq!(
                Repr::parse(&Packet::new_checked(&bytes[..]).unwrap()).unwrap(),
                repr
            );
        }
    }

    #[test]
    fn bad_checksum_rejected() {
        let repr = Repr {
            message: Message::LeaveGroup {
                group: Ipv4Addr::new(239, 255, 255, 250),
            },
        };
        let mut bytes = repr.to_bytes();
        bytes[4] ^= 1;
        assert_eq!(
            Repr::parse(&Packet::new_checked(&bytes[..]).unwrap()).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn unknown_type_unsupported() {
        let mut bytes = vec![0x99u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            Repr::parse(&Packet::new_checked(&bytes[..]).unwrap()).unwrap_err(),
            Error::Unsupported
        );
    }
}
