//! Single-allocation frame composition.
//!
//! Every layer in this crate follows the smoltcp idiom — a `Repr` knows its
//! own `buffer_len()` and can `emit()` itself into any mutable byte view —
//! but the per-layer `build_*` helpers compose by nesting: each layer
//! allocates its own buffer and copies the inner layers into it, so a full
//! `eth(ipv4(udp(payload)))` frame costs three allocations and three
//! payload copies. This module composes the same `emit()` calls the other
//! way around: the total frame length is computed top-down from the layer
//! `Repr`s, **one** buffer is allocated, and every header is emitted in
//! place with the payload written exactly once.
//!
//! The emitted bytes are identical to the nested builders' — same fields,
//! same offsets, same checksum order — which the roundtrip tests below and
//! the simulator's determinism suites pin down.

use crate::ethernet::{self, EtherType};
use crate::ipv4;
use crate::{arp, icmpv4, icmpv6, igmp, ipv6, tcp, udp};

/// `eth(ipv4(udp(payload)))` in one allocation, UDP checksum over the IPv4
/// pseudo-header.
pub fn eth_ipv4_udp(
    eth: &ethernet::Repr,
    ip: &ipv4::Repr,
    udp_repr: &udp::Repr,
    payload: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(udp_repr.payload_len, payload.len());
    debug_assert_eq!(ip.payload_len, udp_repr.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv4::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut datagram = udp::Packet::new_unchecked(&mut buffer[transport..]);
    udp_repr.emit(&mut datagram);
    datagram.payload_mut().copy_from_slice(payload);
    datagram.fill_checksum_v4(ip.src_addr, ip.dst_addr);
    buffer
}

/// `eth(ipv4(tcp(payload)))` in one allocation.
pub fn eth_ipv4_tcp(
    eth: &ethernet::Repr,
    ip: &ipv4::Repr,
    tcp_repr: &tcp::Repr,
    payload: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(tcp_repr.payload_len, payload.len());
    debug_assert_eq!(ip.payload_len, tcp_repr.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv4::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut segment = tcp::Packet::new_unchecked(&mut buffer[transport..]);
    tcp_repr.emit(&mut segment);
    segment.payload_mut().copy_from_slice(payload);
    segment.fill_checksum_v4(ip.src_addr, ip.dst_addr);
    buffer
}

/// `eth(ipv4(icmp(payload)))` in one allocation. The ICMP checksum covers
/// the payload, so the payload lands first and `emit` finalizes it.
pub fn eth_ipv4_icmp(
    eth: &ethernet::Repr,
    ip: &ipv4::Repr,
    icmp: &icmpv4::Repr,
    payload: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(icmp.payload_len, payload.len());
    debug_assert_eq!(ip.payload_len, icmp.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv4::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut packet = icmpv4::Packet::new_unchecked(&mut buffer[transport..]);
    packet.payload_mut().copy_from_slice(payload);
    icmp.emit(&mut packet);
    buffer
}

/// `eth(ipv4(igmp))` in one allocation.
pub fn eth_ipv4_igmp(eth: &ethernet::Repr, ip: &ipv4::Repr, igmp_repr: &igmp::Repr) -> Vec<u8> {
    debug_assert_eq!(ip.payload_len, igmp_repr.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv4::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    igmp_repr.emit(&mut igmp::Packet::new_unchecked(&mut buffer[transport..]));
    buffer
}

/// `eth(arp)` in one allocation.
pub fn eth_arp(eth: &ethernet::Repr, arp_repr: &arp::Repr) -> Vec<u8> {
    debug_assert_eq!(eth.ethertype, EtherType::Arp);
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + arp_repr.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    arp_repr.emit(&mut arp::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    buffer
}

/// `eth(ipv6(udp(payload)))` in one allocation, UDP checksum over the IPv6
/// pseudo-header.
pub fn eth_ipv6_udp(
    eth: &ethernet::Repr,
    ip: &ipv6::Repr,
    udp_repr: &udp::Repr,
    payload: &[u8],
) -> Vec<u8> {
    debug_assert_eq!(udp_repr.payload_len, payload.len());
    debug_assert_eq!(ip.payload_len, udp_repr.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv6::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
    let mut datagram = udp::Packet::new_unchecked(&mut buffer[transport..]);
    udp_repr.emit(&mut datagram);
    datagram.payload_mut().copy_from_slice(payload);
    datagram.fill_checksum_v6(ip.src_addr, ip.dst_addr);
    buffer
}

/// `eth(ipv6(icmpv6))` in one allocation; the ICMPv6 checksum needs the
/// pseudo-header endpoints, which are taken from the IPv6 `Repr`.
pub fn eth_ipv6_icmpv6(eth: &ethernet::Repr, ip: &ipv6::Repr, icmp: &icmpv6::Repr) -> Vec<u8> {
    debug_assert_eq!(ip.payload_len, icmp.buffer_len());
    let mut buffer = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    eth.emit(&mut ethernet::Frame::new_unchecked(&mut buffer[..]));
    ip.emit(&mut ipv6::Packet::new_unchecked(
        &mut buffer[ethernet::HEADER_LEN..],
    ));
    let transport = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
    icmp.emit(
        &mut icmpv6::Packet::new_unchecked(&mut buffer[transport..]),
        ip.src_addr,
        ip.dst_addr,
    );
    buffer
}

/// Build the same UDP frame via the nested per-layer builders — the
/// reference the compose path is checked against (and benchmarked over in
/// `perf_frames`).
pub fn nested_eth_ipv4_udp(
    eth: &ethernet::Repr,
    ip: &ipv4::Repr,
    udp_repr: &udp::Repr,
    payload: &[u8],
) -> Vec<u8> {
    let datagram = udp::build_datagram_v4(udp_repr, ip.src_addr, ip.dst_addr, payload);
    let packet = ipv4::build_packet(ip, &datagram);
    ethernet::build_frame(eth, &packet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::EthernetAddress;
    use crate::ipv4::Protocol;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn eth(ethertype: EtherType) -> ethernet::Repr {
        ethernet::Repr {
            src_addr: EthernetAddress([2, 0, 0, 0, 0, 1]),
            dst_addr: EthernetAddress([2, 0, 0, 0, 0, 2]),
            ethertype,
        }
    }

    fn v4(protocol: Protocol, ttl: u8, payload_len: usize) -> ipv4::Repr {
        ipv4::Repr {
            src_addr: Ipv4Addr::new(192, 168, 10, 1),
            dst_addr: Ipv4Addr::new(192, 168, 10, 2),
            protocol,
            ttl,
            payload_len,
        }
    }

    #[test]
    fn udp_matches_nested_builders() {
        for payload in [&b""[..], b"q", b"a-longer-mdns-style-payload"] {
            let udp_repr = udp::Repr {
                src_port: 5353,
                dst_port: 5353,
                payload_len: payload.len(),
            };
            let ip = v4(Protocol::Udp, 64, udp_repr.buffer_len());
            let eth = eth(EtherType::Ipv4);
            assert_eq!(
                eth_ipv4_udp(&eth, &ip, &udp_repr, payload),
                nested_eth_ipv4_udp(&eth, &ip, &udp_repr, payload),
            );
        }
    }

    #[test]
    fn tcp_matches_nested_builders() {
        let payload = b"GET / HTTP/1.1\r\n\r\n";
        let tcp_repr = tcp::Repr::data(40000, 80, 7, 9, payload.len());
        let ip = v4(Protocol::Tcp, 64, tcp_repr.buffer_len());
        let eth = eth(EtherType::Ipv4);
        let nested = {
            let segment = tcp::build_segment_v4(&tcp_repr, ip.src_addr, ip.dst_addr, payload);
            let packet = ipv4::build_packet(&ip, &segment);
            ethernet::build_frame(&eth, &packet)
        };
        assert_eq!(eth_ipv4_tcp(&eth, &ip, &tcp_repr, payload), nested);
    }

    #[test]
    fn icmp_matches_nested_builders() {
        let payload = b"abcdefgh";
        let icmp = icmpv4::Repr {
            message: icmpv4::Message::EchoRequest { ident: 1, seq: 2 },
            payload_len: payload.len(),
        };
        let ip = v4(Protocol::Icmp, 64, icmp.buffer_len());
        let eth = eth(EtherType::Ipv4);
        let nested = {
            let packet = icmpv4::build_packet(&icmp, payload);
            let ip_packet = ipv4::build_packet(&ip, &packet);
            ethernet::build_frame(&eth, &ip_packet)
        };
        assert_eq!(eth_ipv4_icmp(&eth, &ip, &icmp, payload), nested);
    }

    #[test]
    fn igmp_matches_nested_builders() {
        let group = Ipv4Addr::new(224, 0, 0, 251);
        let igmp_repr = igmp::Repr {
            message: igmp::Message::MembershipReportV2 { group },
        };
        let ip = v4(Protocol::Igmp, 1, igmp_repr.buffer_len());
        let eth = eth(EtherType::Ipv4);
        let nested = {
            let body = igmp_repr.to_bytes();
            let packet = ipv4::build_packet(&ip, &body);
            ethernet::build_frame(&eth, &packet)
        };
        assert_eq!(eth_ipv4_igmp(&eth, &ip, &igmp_repr), nested);
    }

    #[test]
    fn arp_matches_nested_builders() {
        let arp_repr = arp::Repr::request(
            EthernetAddress([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(192, 168, 10, 1),
            Ipv4Addr::new(192, 168, 10, 2),
        );
        let eth = eth(EtherType::Arp);
        let nested = ethernet::build_frame(&eth, &arp_repr.to_bytes());
        assert_eq!(eth_arp(&eth, &arp_repr), nested);
    }

    #[test]
    fn udp_v6_matches_nested_builders() {
        let src: Ipv6Addr = "fe80::1".parse().unwrap();
        let dst: Ipv6Addr = "ff02::fb".parse().unwrap();
        let payload = b"mdns";
        let udp_repr = udp::Repr {
            src_port: 5353,
            dst_port: 5353,
            payload_len: payload.len(),
        };
        let ip = ipv6::Repr {
            src_addr: src,
            dst_addr: dst,
            next_header: Protocol::Udp,
            hop_limit: 255,
            payload_len: udp_repr.buffer_len(),
        };
        let eth = eth(EtherType::Ipv6);
        let nested = {
            let datagram = udp::build_datagram_v6(&udp_repr, src, dst, payload);
            let packet = ipv6::build_packet(&ip, &datagram);
            ethernet::build_frame(&eth, &packet)
        };
        assert_eq!(eth_ipv6_udp(&eth, &ip, &udp_repr, payload), nested);
    }

    #[test]
    fn icmpv6_matches_nested_builders() {
        let src: Ipv6Addr = "fe80::1".parse().unwrap();
        let target: Ipv6Addr = "fe80::2".parse().unwrap();
        let dst = ipv6::solicited_node(target);
        let icmp = icmpv6::Repr {
            message: icmpv6::Message::NeighborSolicit {
                target,
                source_mac: Some(EthernetAddress([2, 0, 0, 0, 0, 1])),
            },
        };
        let ip = ipv6::Repr {
            src_addr: src,
            dst_addr: dst,
            next_header: Protocol::Ipv6Icmp,
            hop_limit: 255,
            payload_len: icmp.buffer_len(),
        };
        let eth = eth(EtherType::Ipv6);
        let nested = {
            let body = icmp.to_bytes(src, dst);
            let packet = ipv6::build_packet(&ip, &body);
            ethernet::build_frame(&eth, &packet)
        };
        assert_eq!(eth_ipv6_icmpv6(&eth, &ip, &icmp), nested);
    }
}
