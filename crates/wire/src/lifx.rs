//! The LIFX LAN protocol header.
//!
//! §5.1's "unidentified traffic" finding: Echo devices broadcast a packet to
//! UDP 56700 every 2 hours, "which seems to be used by Lifx, a smart device
//! manufacturer not represented in our testbed." We implement the LIFX
//! binary header (little-endian, unusually) so the probe is byte-faithful
//! and so the classifier can *fail* to label it the way the paper's did —
//! no LIFX device is in the catalog to answer.

use crate::{Error, Result};

/// The LIFX LAN UDP port.
pub const LIFX_PORT: u16 = 56700;

/// GetService — the discovery message type.
pub const MSG_GET_SERVICE: u16 = 2;

/// A LIFX protocol header (36 bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Total message size including this header.
    pub size: u16,
    /// Source identifier set by the client.
    pub source: u32,
    /// Target MAC (zero = broadcast/tagged).
    pub target: [u8; 8],
    pub sequence: u8,
    pub message_type: u16,
    /// True for discovery (tagged) messages.
    pub tagged: bool,
}

/// LIFX header length.
pub const HEADER_LEN: usize = 36;

impl Header {
    /// The GetService discovery broadcast the Echo emits.
    pub fn get_service(source: u32, sequence: u8) -> Header {
        Header {
            size: HEADER_LEN as u16,
            source,
            target: [0; 8],
            sequence,
            message_type: MSG_GET_SERVICE,
            tagged: true,
        }
    }

    pub fn parse(data: &[u8]) -> Result<Header> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let size = u16::from_le_bytes([data[0], data[1]]);
        if usize::from(size) < HEADER_LEN || usize::from(size) > data.len() {
            return Err(Error::Truncated);
        }
        let proto_field = u16::from_le_bytes([data[2], data[3]]);
        // Low 12 bits: protocol number, must be 1024.
        if proto_field & 0x0fff != 1024 {
            return Err(Error::Malformed);
        }
        let tagged = proto_field & 0x2000 != 0;
        let source = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        let target: [u8; 8] = data[8..16].try_into().unwrap();
        let sequence = data[23];
        let message_type = u16::from_le_bytes([data[32], data[33]]);
        Ok(Header {
            size,
            source,
            target,
            sequence,
            message_type,
            tagged,
        })
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN];
        out[0..2].copy_from_slice(&self.size.to_le_bytes());
        let mut proto_field: u16 = 1024;
        proto_field |= 0x1000; // addressable, always set
        if self.tagged {
            proto_field |= 0x2000;
        }
        out[2..4].copy_from_slice(&proto_field.to_le_bytes());
        out[4..8].copy_from_slice(&self.source.to_le_bytes());
        out[8..16].copy_from_slice(&self.target);
        out[23] = self.sequence;
        out[32..34].copy_from_slice(&self.message_type.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_service_roundtrip() {
        let header = Header::get_service(0x0a0b_0c0d, 9);
        let bytes = header.to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN);
        let parsed = Header::parse(&bytes).unwrap();
        assert_eq!(parsed, header);
        assert!(parsed.tagged);
        assert_eq!(parsed.message_type, MSG_GET_SERVICE);
    }

    #[test]
    fn little_endian_size() {
        let header = Header::get_service(1, 0);
        let bytes = header.to_bytes();
        assert_eq!(bytes[0], HEADER_LEN as u8);
        assert_eq!(bytes[1], 0);
    }

    #[test]
    fn wrong_protocol_rejected() {
        let header = Header::get_service(1, 0);
        let mut bytes = header.to_bytes();
        bytes[2] = 0; // protocol low byte
        bytes[3] &= 0xf0;
        assert_eq!(Header::parse(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = Header::get_service(1, 0).to_bytes();
        assert_eq!(Header::parse(&bytes[..20]).unwrap_err(), Error::Truncated);
        let mut oversized = bytes.clone();
        oversized[0] = 200; // claims more than present
        assert_eq!(Header::parse(&oversized).unwrap_err(), Error::Truncated);
    }
}
