//! DHCPv6 (RFC 8415), minimal subset: Solicit/Advertise with client
//! identifier (DUID) and FQDN options. Appears in the multicast-discovery
//! protocol mix of Figure 2.

use crate::field;
use crate::{Error, Result};

/// DHCPv6 message types used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    Solicit,
    Advertise,
    Request,
    Reply,
    Unknown(u8),
}

impl From<u8> for MessageType {
    fn from(value: u8) -> Self {
        match value {
            1 => MessageType::Solicit,
            2 => MessageType::Advertise,
            3 => MessageType::Request,
            7 => MessageType::Reply,
            other => MessageType::Unknown(other),
        }
    }
}

impl From<MessageType> for u8 {
    fn from(value: MessageType) -> u8 {
        match value {
            MessageType::Solicit => 1,
            MessageType::Advertise => 2,
            MessageType::Request => 3,
            MessageType::Reply => 7,
            MessageType::Unknown(other) => other,
        }
    }
}

/// Option codes.
pub mod option_codes {
    pub const CLIENT_ID: u16 = 1;
    pub const SERVER_ID: u16 = 2;
    /// Fully-qualified domain name — another hostname leak channel.
    pub const FQDN: u16 = 39;
}

/// A raw DHCPv6 option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dhcpv6Option {
    pub code: u16,
    pub data: Vec<u8>,
}

/// Fixed header: msg-type (1) + transaction id (3).
pub const HEADER_LEN: usize = 4;

/// High-level representation of a DHCPv6 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repr {
    pub message_type: MessageType,
    pub transaction_id: u32, // 24 bits
    pub options: Vec<Dhcpv6Option>,
}

impl Repr {
    pub fn parse(data: &[u8]) -> Result<Repr> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let message_type = MessageType::from(data[0]);
        let transaction_id =
            (u32::from(data[1]) << 16) | (u32::from(data[2]) << 8) | u32::from(data[3]);
        let mut options = Vec::new();
        let mut i = HEADER_LEN;
        while i < data.len() {
            let code = field::read_u16(data, i)?;
            let len = field::read_u16(data, i + 2)? as usize;
            if i + 4 + len > data.len() {
                return Err(Error::Truncated);
            }
            options.push(Dhcpv6Option {
                code,
                data: data[i + 4..i + 4 + len].to_vec(),
            });
            i += 4 + len;
        }
        Ok(Repr {
            message_type,
            transaction_id,
            options,
        })
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buffer = Vec::with_capacity(HEADER_LEN);
        buffer.push(self.message_type.into());
        buffer.push((self.transaction_id >> 16) as u8);
        buffer.push((self.transaction_id >> 8) as u8);
        buffer.push(self.transaction_id as u8);
        for option in &self.options {
            buffer.extend_from_slice(&option.code.to_be_bytes());
            buffer.extend_from_slice(&(option.data.len() as u16).to_be_bytes());
            buffer.extend_from_slice(&option.data);
        }
        buffer
    }

    /// Find an option by code.
    pub fn option(&self, code: u16) -> Option<&[u8]> {
        self.options
            .iter()
            .find(|o| o.code == code)
            .map(|o| o.data.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solicit_roundtrip() {
        let repr = Repr {
            message_type: MessageType::Solicit,
            transaction_id: 0x00ab_cdef,
            options: vec![
                Dhcpv6Option {
                    code: option_codes::CLIENT_ID,
                    data: vec![0, 1, 0, 1, 1, 2, 3, 4],
                },
                Dhcpv6Option {
                    code: option_codes::FQDN,
                    data: b"\x00nest-hub".to_vec(),
                },
            ],
        };
        let bytes = repr.to_bytes();
        let parsed = Repr::parse(&bytes).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(parsed.option(option_codes::FQDN), Some(&b"\x00nest-hub"[..]));
    }

    #[test]
    fn truncated_option_rejected() {
        let repr = Repr {
            message_type: MessageType::Solicit,
            transaction_id: 1,
            options: vec![Dhcpv6Option {
                code: 1,
                data: vec![1, 2, 3],
            }],
        };
        let bytes = repr.to_bytes();
        assert_eq!(Repr::parse(&bytes[..bytes.len() - 1]).unwrap_err(), Error::Truncated);
        assert_eq!(Repr::parse(&bytes[..3]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn transaction_id_is_24_bit() {
        let repr = Repr {
            message_type: MessageType::Reply,
            transaction_id: 0x0012_3456,
            options: vec![],
        };
        let parsed = Repr::parse(&repr.to_bytes()).unwrap();
        assert_eq!(parsed.transaction_id, 0x0012_3456);
    }
}
