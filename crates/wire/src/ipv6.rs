//! IPv6 (RFC 8200) fixed headers. 59% of lab devices support IPv6 (§4.1);
//! SLAAC/NDP behaviour lives in [`crate::icmpv6`].

use crate::field::{self, Field};
use crate::ipv4::Protocol;
use crate::{Error, Result};
use std::net::Ipv6Addr;

#[allow(dead_code)]
mod layout {
    use super::Field;
    pub const VER_TC_FL: Field = 0..4;
    pub const LENGTH: Field = 4..6;
    pub const NEXT_HEADER: usize = 6;
    pub const HOP_LIMIT: usize = 7;
    pub const SRC_ADDR: Field = 8..24;
    pub const DST_ADDR: Field = 24..40;
}

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// True for fe80::/10 link-local addresses.
pub fn is_link_local(addr: Ipv6Addr) -> bool {
    addr.segments()[0] & 0xffc0 == 0xfe80
}

/// True for ff00::/8 multicast.
pub fn is_multicast(addr: Ipv6Addr) -> bool {
    addr.octets()[0] == 0xff
}

/// The solicited-node multicast address for `addr` (RFC 4291 §2.7.1).
pub fn solicited_node(addr: Ipv6Addr) -> Ipv6Addr {
    let o = addr.octets();
    Ipv6Addr::new(
        0xff02,
        0,
        0,
        0,
        0,
        1,
        0xff00 | u16::from(o[13]),
        (u16::from(o[14]) << 8) | u16::from(o[15]),
    )
}

/// Derive an EUI-64 link-local address from a MAC, as SLAAC devices do.
pub fn link_local_from_mac(mac: crate::EthernetAddress) -> Ipv6Addr {
    let m = mac.0;
    Ipv6Addr::new(
        0xfe80,
        0,
        0,
        0,
        (u16::from(m[0] ^ 0x02) << 8) | u16::from(m[1]),
        (u16::from(m[2]) << 8) | 0x00ff,
        0xfe00 | u16::from(m[3]),
        (u16::from(m[4]) << 8) | u16::from(m[5]),
    )
}

/// A view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let packet = Packet { buffer };
        if packet.version() != 6 {
            return Err(Error::Malformed);
        }
        if HEADER_LEN + packet.payload_len() as usize > len {
            return Err(Error::Truncated);
        }
        Ok(packet)
    }

    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    pub fn payload_len(&self) -> u16 {
        field::read_u16(self.buffer.as_ref(), layout::LENGTH.start).unwrap()
    }

    /// Next-header, reusing the IPv4 protocol registry (the numbers are
    /// shared for the transports we care about).
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[layout::NEXT_HEADER])
    }

    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[layout::HOP_LIMIT]
    }

    pub fn src_addr(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[layout::SRC_ADDR].try_into().unwrap();
        Ipv6Addr::from(b)
    }

    pub fn dst_addr(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[layout::DST_ADDR].try_into().unwrap();
        Ipv6Addr::from(b)
    }

    pub fn payload(&self) -> &[u8] {
        let end = HEADER_LEN + self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    pub fn set_version(&mut self) {
        let data = self.buffer.as_mut();
        data[0] = 0x60;
        data[1] = 0;
        data[2] = 0;
        data[3] = 0;
    }

    pub fn set_payload_len(&mut self, value: u16) {
        field::write_u16(self.buffer.as_mut(), layout::LENGTH.start, value);
    }

    pub fn set_next_header(&mut self, value: Protocol) {
        self.buffer.as_mut()[layout::NEXT_HEADER] = value.into();
    }

    pub fn set_hop_limit(&mut self, value: u8) {
        self.buffer.as_mut()[layout::HOP_LIMIT] = value;
    }

    pub fn set_src_addr(&mut self, value: Ipv6Addr) {
        self.buffer.as_mut()[layout::SRC_ADDR].copy_from_slice(&value.octets());
    }

    pub fn set_dst_addr(&mut self, value: Ipv6Addr) {
        self.buffer.as_mut()[layout::DST_ADDR].copy_from_slice(&value.octets());
    }

    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = HEADER_LEN + self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..end]
    }
}

/// High-level representation of an IPv6 fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub src_addr: Ipv6Addr,
    pub dst_addr: Ipv6Addr,
    pub next_header: Protocol,
    pub hop_limit: u8,
    pub payload_len: usize,
}

impl Repr {
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            next_header: packet.next_header(),
            hop_limit: packet.hop_limit(),
            payload_len: packet.payload_len() as usize,
        })
    }

    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version();
        packet.set_payload_len(self.payload_len as u16);
        packet.set_next_header(self.next_header);
        packet.set_hop_limit(self.hop_limit);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
    }
}

/// Build a complete IPv6 packet around `payload`.
pub fn build_packet(repr: &Repr, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(repr.payload_len, payload.len());
    let mut buffer = vec![0u8; HEADER_LEN + payload.len()];
    let mut packet = Packet::new_unchecked(&mut buffer[..]);
    repr.emit(&mut packet);
    packet.payload_mut().copy_from_slice(payload);
    buffer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EthernetAddress;

    #[test]
    fn roundtrip() {
        let repr = Repr {
            src_addr: "fe80::1".parse().unwrap(),
            dst_addr: "ff02::fb".parse().unwrap(),
            next_header: Protocol::Udp,
            hop_limit: 255,
            payload_len: 3,
        };
        let bytes = build_packet(&repr, &[7, 8, 9]);
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload(), &[7, 8, 9]);
    }

    #[test]
    fn bad_version_rejected() {
        let repr = Repr {
            src_addr: Ipv6Addr::LOCALHOST,
            dst_addr: Ipv6Addr::LOCALHOST,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: 0,
        };
        let mut bytes = build_packet(&repr, &[]);
        bytes[0] = 0x40;
        assert_eq!(Packet::new_checked(&bytes[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn payload_len_bounds_checked() {
        let repr = Repr {
            src_addr: Ipv6Addr::LOCALHOST,
            dst_addr: Ipv6Addr::LOCALHOST,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: 0,
        };
        let mut bytes = build_packet(&repr, &[]);
        bytes[5] = 10; // claims 10 payload bytes that are not there
        assert_eq!(Packet::new_checked(&bytes[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn address_predicates() {
        assert!(is_link_local("fe80::abcd".parse().unwrap()));
        assert!(!is_link_local("2001:db8::1".parse().unwrap()));
        assert!(is_multicast("ff02::fb".parse().unwrap()));
        assert!(!is_multicast("fe80::1".parse().unwrap()));
    }

    #[test]
    fn solicited_node_address() {
        let addr: Ipv6Addr = "fe80::0217:88ff:fe68:5f61".parse().unwrap();
        assert_eq!(
            solicited_node(addr),
            "ff02::1:ff68:5f61".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn eui64_from_mac() {
        // The Philips Hue example from the paper's Table 5 mDNS entry:
        // MAC 00:17:88:68:5f:61 -> fe80::217:88ff:fe68:5f61.
        let mac = EthernetAddress::parse("00:17:88:68:5f:61").unwrap();
        assert_eq!(
            link_local_from_mac(mac),
            "fe80::217:88ff:fe68:5f61".parse::<Ipv6Addr>().unwrap()
        );
    }
}
