//! IEEE 802.2 LLC frames with the XID command — the "XID/LLC" bar of
//! Figure 2 (93% of devices use broadcast protocols "like ARP, XID/LLC,
//! DHCP"). Wi-Fi chipsets emit broadcast XID frames at association for
//! bridge/roaming discovery.
//!
//! On the wire these are 802.3 length-framed (EtherType field < 0x0600 is
//! a length), so they surface as `EtherType::Unknown(len)` at the Ethernet
//! layer and classify as UNKNOWN-L3 — exactly how the paper's tools see
//! them.

use crate::{Error, Result};

/// LLC header: DSAP, SSAP, control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlcFrame {
    pub dsap: u8,
    pub ssap: u8,
    /// Control field; XID uses the unnumbered format 0xAF/0xBF.
    pub control: u8,
    /// XID information field (format identifier, class, window).
    pub info: Vec<u8>,
}

/// The NULL SAP used by broadcast XID probes.
pub const SAP_NULL: u8 = 0x00;
/// Unnumbered XID control value (P/F bit set).
pub const CONTROL_XID: u8 = 0xbf;

impl LlcFrame {
    /// The classic broadcast XID probe (`AA AA 03`-less NULL-SAP form):
    /// DSAP 0, SSAP 0, control 0xBF, info `81 01 00`.
    pub fn xid_probe() -> LlcFrame {
        LlcFrame {
            dsap: SAP_NULL,
            ssap: SAP_NULL,
            control: CONTROL_XID,
            info: vec![0x81, 0x01, 0x00],
        }
    }

    /// True when the control field marks an XID exchange.
    pub fn is_xid(&self) -> bool {
        self.control & 0xef == 0xaf
    }

    pub fn parse(data: &[u8]) -> Result<LlcFrame> {
        if data.len() < 3 {
            return Err(Error::Truncated);
        }
        Ok(LlcFrame {
            dsap: data[0],
            ssap: data[1],
            control: data[2],
            info: data[3..].to_vec(),
        })
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.info.len());
        out.push(self.dsap);
        out.push(self.ssap);
        out.push(self.control);
        out.extend_from_slice(&self.info);
        out
    }

    /// Build the full 802.3 frame: length-framed Ethernet header + LLC PDU,
    /// padded to the 64-byte minimum.
    pub fn to_8023_frame(
        &self,
        src: crate::EthernetAddress,
        dst: crate::EthernetAddress,
    ) -> Vec<u8> {
        let pdu = self.to_bytes();
        let mut frame = Vec::with_capacity(64);
        frame.extend_from_slice(dst.as_bytes());
        frame.extend_from_slice(src.as_bytes());
        // 802.3: the third field is the PDU length, not an EtherType.
        frame.extend_from_slice(&(pdu.len() as u16).to_be_bytes());
        frame.extend_from_slice(&pdu);
        while frame.len() < 60 {
            frame.push(0); // pad (FCS not modelled)
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EthernetAddress;

    #[test]
    fn xid_roundtrip() {
        let frame = LlcFrame::xid_probe();
        assert!(frame.is_xid());
        let parsed = LlcFrame::parse(&frame.to_bytes()).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(parsed.info, vec![0x81, 0x01, 0x00]);
    }

    #[test]
    fn frames_as_length_not_ethertype() {
        let src = EthernetAddress([2, 0, 0, 0, 0, 1]);
        let frame = LlcFrame::xid_probe().to_8023_frame(src, EthernetAddress::BROADCAST);
        assert!(frame.len() >= 60);
        let view = crate::ethernet::Frame::new_checked(&frame[..]).unwrap();
        // The type field is the PDU length (6) — below 0x0600, so it is a
        // length field, surfacing as Unknown.
        assert_eq!(view.ethertype(), crate::EtherType::Unknown(6));
        assert!(view.dst_addr().is_broadcast());
        let pdu = LlcFrame::parse(&view.payload()[..6]).unwrap();
        assert!(pdu.is_xid());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(LlcFrame::parse(&[0, 0]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn non_xid_control() {
        let frame = LlcFrame {
            dsap: 0x42,
            ssap: 0x42,
            control: 0x03, // UI frame (STP-style)
            info: vec![],
        };
        assert!(!frame.is_xid());
        assert_eq!(LlcFrame::parse(&frame.to_bytes()).unwrap(), frame);
    }
}
