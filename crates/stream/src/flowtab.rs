//! Bounded streaming flow table: assembles flows like
//! `iotlan_classify::flow::FlowTable`, but holds at most `capacity` live
//! flows and retires them deterministically, emitting each completed
//! [`FlowRecord`] to a sink.
//!
//! Two eviction triggers, both deterministic functions of the input
//! sequence alone:
//!
//! * **Idle timeout** — a flow whose `last_seen` has fallen more than
//!   `idle_timeout` behind the high-water timestamp is retired. Capture
//!   record order may run ahead of timestamps by a bounded skew (delayed
//!   sends are stamped ahead; see `DESIGN.md` §7), so the comparison uses
//!   the *maximum stamp seen*, which is monotone.
//! * **LRU capacity** — when a new key would exceed `capacity`, the
//!   least-recently-touched flow is retired first. Recency is a per-table
//!   monotone sequence number assigned in arrival order, so ties are
//!   impossible and the victim is unique.
//!
//! A key that reappears after its flow was retired starts a *new* record
//! (a flow "split"). Analyses that
//! need exactness across splits must keep their own sticky per-key state —
//! that is precisely what `StreamEngine` does; this table is the
//! flow-record *stream*, not the figure accumulator.

use iotlan_classify::flow::{dissect_frame, FlowKey, FrameEvidence, MAX_SAMPLES};
use iotlan_netsim::{SimDuration, SimTime};
use iotlan_wire::ethernet::EthernetAddress;
use std::collections::{BTreeMap, HashMap};

/// One completed (retired) flow, with the same evidence fields as the
/// batch `Flow` but a bounded timestamp list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    pub key: FlowKey,
    pub packets: u64,
    pub bytes: u64,
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    /// Destination MAC of the record's first frame.
    pub dst_mac: EthernetAddress,
    /// Up to `MAX_SAMPLES` initial non-empty payloads.
    pub payload_samples: Vec<Vec<u8>>,
    /// Arrival times, capped at [`StreamFlowTable::timestamp_cap`].
    pub timestamps: Vec<SimTime>,
    /// True when `timestamps` was capped (packets > retained times).
    pub timestamps_truncated: bool,
}

/// Receiver for retired flows. Records arrive in retirement order, which
/// is deterministic for a given input sequence.
pub trait FlowRecordSink {
    fn on_flow(&mut self, record: FlowRecord);
}

/// A sink that simply collects records.
#[derive(Debug, Default)]
pub struct CollectRecords(pub Vec<FlowRecord>);

impl FlowRecordSink for CollectRecords {
    fn on_flow(&mut self, record: FlowRecord) {
        self.0.push(record);
    }
}

struct LiveFlow {
    record: FlowRecord,
    /// Recency sequence number (monotone per table).
    touched: u64,
    /// Sequence number at creation, for final-drain ordering.
    created: u64,
}

/// The bounded flow table.
pub struct StreamFlowTable {
    capacity: usize,
    idle_timeout: SimDuration,
    timestamp_cap: usize,
    live: HashMap<FlowKey, LiveFlow>,
    /// touched-seq → key: the LRU order. Rebuilt lazily on touch.
    recency: BTreeMap<u64, FlowKey>,
    next_seq: u64,
    max_stamp: SimTime,
    retired: u64,
    frames_since_idle_scan: u32,
    last_scan_stamp: SimTime,
}

/// Idle-eviction scans run every this many frames: the scan is O(live
/// flows), so amortizing keeps per-frame cost O(1). Deterministic — the
/// cadence depends only on the frame count.
const IDLE_SCAN_EVERY: u32 = 256;

impl StreamFlowTable {
    /// `capacity` live flows; flows idle longer than `idle_timeout`
    /// (against the high-water stamp) retire on the next frame.
    pub fn new(capacity: usize, idle_timeout: SimDuration) -> StreamFlowTable {
        assert!(capacity > 0);
        StreamFlowTable {
            capacity,
            idle_timeout,
            timestamp_cap: 2048,
            live: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            max_stamp: SimTime::ZERO,
            retired: 0,
            frames_since_idle_scan: 0,
            last_scan_stamp: SimTime::ZERO,
        }
    }

    /// Override the per-record timestamp cap (default 2048).
    pub fn with_timestamp_cap(mut self, cap: usize) -> StreamFlowTable {
        self.timestamp_cap = cap.max(1);
        self
    }

    /// Number of currently live (unretired) flows.
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    /// Total records retired so far (not counting the final drain).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Rough resident size, for peak-state accounting.
    pub fn state_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for flow in self.live.values() {
            bytes += std::mem::size_of::<FlowKey>() + std::mem::size_of::<FlowRecord>() + 48;
            bytes += flow.record.timestamps.len() * 8;
            bytes += flow
                .record
                .payload_samples
                .iter()
                .map(|p| p.len())
                .sum::<usize>();
        }
        bytes + self.recency.len() * 24
    }

    /// Feed one frame. Eviction decisions happen before insertion, so a
    /// frame can retire flows (including, under LRU pressure, some other
    /// flow) and then extend or create its own.
    pub fn add_frame(&mut self, time: SimTime, data: &[u8], sink: &mut impl FlowRecordSink) {
        let Some(FrameEvidence {
            key,
            dst_mac,
            payload,
        }) = dissect_frame(data)
        else {
            return;
        };
        if time > self.max_stamp {
            self.max_stamp = time;
        }
        // Amortized idle scan: every IDLE_SCAN_EVERY frames, or sooner when
        // the high-water stamp jumps (quiet networks emit few frames, so a
        // count-only cadence would let stale flows linger indefinitely).
        self.frames_since_idle_scan += 1;
        let stamp_jumped = self.max_stamp.as_micros() - self.last_scan_stamp.as_micros()
            >= self.idle_timeout.as_micros() / 4;
        if self.frames_since_idle_scan >= IDLE_SCAN_EVERY || stamp_jumped {
            self.frames_since_idle_scan = 0;
            self.last_scan_stamp = self.max_stamp;
            self.retire_idle(sink);
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        let total_len = data.len() as u64;
        if let Some(flow) = self.live.get_mut(&key) {
            self.recency.remove(&flow.touched);
            flow.touched = seq;
            self.recency.insert(seq, key);
            let record = &mut flow.record;
            record.packets += 1;
            record.bytes += total_len;
            record.last_seen = time;
            if record.timestamps.len() < self.timestamp_cap {
                record.timestamps.push(time);
            } else {
                record.timestamps_truncated = true;
            }
            if record.payload_samples.len() < MAX_SAMPLES {
                if let Some(p) = payload {
                    if !p.is_empty() {
                        record.payload_samples.push(p.to_vec());
                    }
                }
            }
            return;
        }

        // New key: make room first.
        if self.live.len() >= self.capacity {
            self.retire_lru(sink);
        }
        let mut payload_samples = Vec::new();
        if let Some(p) = payload {
            if !p.is_empty() {
                payload_samples.push(p.to_vec());
            }
        }
        self.recency.insert(seq, key);
        self.live.insert(
            key,
            LiveFlow {
                record: FlowRecord {
                    key,
                    packets: 1,
                    bytes: total_len,
                    first_seen: time,
                    last_seen: time,
                    dst_mac,
                    payload_samples,
                    timestamps: vec![time],
                    timestamps_truncated: false,
                },
                touched: seq,
                created: seq,
            },
        );
    }

    fn retire_idle(&mut self, sink: &mut impl FlowRecordSink) {
        let horizon_micros = self
            .max_stamp
            .as_micros()
            .saturating_sub(self.idle_timeout.as_micros());
        // Stamp skew means LRU order is not last-seen order, so scan every
        // live flow; the recency index gives a deterministic walk (and
        // therefore a deterministic retirement order).
        let stale: Vec<(u64, FlowKey)> = self
            .recency
            .iter()
            .filter(|(_, key)| self.live[*key].record.last_seen.as_micros() < horizon_micros)
            .map(|(&seq, &key)| (seq, key))
            .collect();
        for (seq, key) in stale {
            self.recency.remove(&seq);
            let flow = self.live.remove(&key).expect("stale key is live");
            self.retired += 1;
            iotlan_telemetry::counter!("stream.flows_retired_idle").incr();
            sink.on_flow(flow.record);
        }
    }

    fn retire_lru(&mut self, sink: &mut impl FlowRecordSink) {
        if let Some((&seq, &key)) = self.recency.iter().next() {
            self.recency.remove(&seq);
            let flow = self.live.remove(&key).expect("LRU key is live");
            self.retired += 1;
            iotlan_telemetry::counter!("stream.flows_retired_lru").incr();
            sink.on_flow(flow.record);
        }
    }

    /// Retire every remaining flow, in creation order (matching the batch
    /// table's first-seen flow order for never-evicted inputs).
    pub fn finish(mut self, sink: &mut impl FlowRecordSink) {
        let mut remaining: Vec<LiveFlow> = self.live.drain().map(|(_, flow)| flow).collect();
        remaining.sort_by_key(|flow| flow.created);
        for flow in remaining {
            sink.on_flow(flow.record);
        }
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotlan_netsim::stack::{self, Endpoint};
    use std::net::Ipv4Addr;

    fn ep(last: u8) -> Endpoint {
        Endpoint {
            mac: EthernetAddress([2, 0, 0, 0, 0, last]),
            ip: Ipv4Addr::new(192, 168, 10, last),
        }
    }

    fn frame(src: u8, dst: u8, sport: u16) -> Vec<u8> {
        stack::udp_unicast(ep(src), ep(dst), sport, 9999, b"payload")
    }

    #[test]
    fn matches_batch_table_when_nothing_evicts() {
        let mut table = StreamFlowTable::new(1024, SimDuration::from_secs(3600));
        let mut batch = iotlan_classify::flow::FlowTable::default();
        let mut sink = CollectRecords::default();
        for i in 0..40u16 {
            let data = frame((i % 4) as u8 + 1, 9, 1000 + (i % 5));
            let t = SimTime::from_secs(u64::from(i));
            table.add_frame(t, &data, &mut sink);
            batch.add_frame(t, &data);
        }
        assert!(sink.0.is_empty(), "nothing should retire early");
        table.finish(&mut sink);
        assert_eq!(sink.0.len(), batch.flows.len());
        for (record, flow) in sink.0.iter().zip(&batch.flows) {
            assert_eq!(record.key, flow.key);
            assert_eq!(record.packets, flow.packets);
            assert_eq!(record.bytes, flow.bytes);
            assert_eq!(record.first_seen, flow.first_seen);
            assert_eq!(record.last_seen, flow.last_seen);
            assert_eq!(record.payload_samples, flow.payload_samples);
            assert_eq!(record.timestamps, flow.timestamps);
            assert!(!record.timestamps_truncated);
        }
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut table = StreamFlowTable::new(2, SimDuration::from_secs(3600));
        let mut sink = CollectRecords::default();
        table.add_frame(SimTime::from_secs(1), &frame(1, 9, 100), &mut sink);
        table.add_frame(SimTime::from_secs(2), &frame(2, 9, 200), &mut sink);
        // Touch flow 1 so flow 2 becomes the LRU victim.
        table.add_frame(SimTime::from_secs(3), &frame(1, 9, 100), &mut sink);
        table.add_frame(SimTime::from_secs(4), &frame(3, 9, 300), &mut sink);
        assert_eq!(sink.0.len(), 1);
        assert_eq!(sink.0[0].key.src_port, 200);
        assert_eq!(table.live_flows(), 2);
        assert_eq!(table.retired(), 1);
    }

    #[test]
    fn idle_timeout_retires_quiet_flows() {
        let mut table = StreamFlowTable::new(64, SimDuration::from_secs(10));
        let mut sink = CollectRecords::default();
        table.add_frame(SimTime::from_secs(1), &frame(1, 9, 100), &mut sink);
        table.add_frame(SimTime::from_secs(2), &frame(2, 9, 200), &mut sink);
        // 30 s later: both earlier flows are stale.
        table.add_frame(SimTime::from_secs(32), &frame(3, 9, 300), &mut sink);
        assert_eq!(sink.0.len(), 2);
        assert_eq!(table.live_flows(), 1);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut table = StreamFlowTable::new(3, SimDuration::from_secs(5));
            let mut sink = CollectRecords::default();
            for i in 0..50u16 {
                table.add_frame(
                    SimTime::from_secs(u64::from(i)),
                    &frame((i % 7) as u8 + 1, 9, 1000 + i % 9),
                    &mut sink,
                );
            }
            table.finish(&mut sink);
            sink.0
                .iter()
                .map(|r| (r.key, r.packets, r.first_seen))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn timestamp_cap_marks_truncation() {
        let mut table =
            StreamFlowTable::new(8, SimDuration::from_secs(3600)).with_timestamp_cap(4);
        let mut sink = CollectRecords::default();
        for i in 0..10u64 {
            table.add_frame(SimTime::from_secs(i), &frame(1, 9, 100), &mut sink);
        }
        table.finish(&mut sink);
        assert_eq!(sink.0.len(), 1);
        assert_eq!(sink.0[0].packets, 10);
        assert_eq!(sink.0[0].timestamps.len(), 4);
        assert!(sink.0[0].timestamps_truncated);
    }
}
