//! The single-pass streaming engine.
//!
//! `StreamEngine` consumes packets one at a time — either as decoded
//! frames (it implements [`iotlan_netsim::FrameSink`], so
//! `Capture::stream_into` / `Capture::drain_into` feed it directly) or as
//! raw pcap bytes in arbitrary chunks — and produces a [`StreamReport`]
//! whose figure/table outputs are byte-identical to the batch pipeline's
//! on the same input.
//!
//! ## Why byte-identity is achievable in one bounded pass
//!
//! Every batch analysis over a `FlowTable` turns out to depend on a
//! *per-key digest*, not on the full packet list (the one exception,
//! periodicity, is exact below a cap — see below):
//!
//! * A flow's classification label depends only on its key (transport,
//!   ports, source MAC) and its **first non-empty payload** — both
//!   available the moment they stream past, and immutable afterwards.
//! * The Fig. 1/4 graph qualifies flows by key + the **first frame's
//!   destination MAC** and then sums packets/bytes — additive, so it can
//!   be updated per packet.
//! * Fig. 2 prevalence is a per-device *set* of labels — determined by
//!   which keys exist, not how many packets each carried.
//! * Table 4 matches discovery and response *timestamps* within a 3 s
//!   window. Capture record order can run behind stamps by a bounded skew
//!   (delayed sends are stamped ahead, at most ~30 s in the simulator),
//!   so a pair of horizon-pruned buffers ([`TABLE4_HORIZON_SECS`]) sees
//!   every pair that the batch cross-join sees.
//! * App. D.1 periodicity sorts each group's event times before testing,
//!   so only the per-group time *multiset* matters. The engine caps
//!   per-key event lists at [`EVENT_CAP`]; below the cap the multiset is
//!   complete and the report is exact ([`StreamReport::periodicity_exact`]
//!   says so), above it the report degrades gracefully to a prefix sample.
//!
//! The residual per-key state (`KeyState`) is O(flow-key cardinality) —
//! traffic structure, not traffic length.

use crate::flowtab::{FlowRecord, FlowRecordSink, StreamFlowTable};
use crate::sketch::{CountMin, Distinct};
use iotlan_analysis::graph::{DeviceGraph, Edge, EdgeKind};
use iotlan_analysis::periodicity::{
    autocorrelation_periodic, destination_bucket_of, dft_periodic, interval_regularity_periodic,
    Group, GroupKey, PeriodicityReport, DISCOVERY_PROTOCOLS,
};
use iotlan_analysis::prevalence::{prevalence_from_observations, Prevalence};
use iotlan_analysis::responses::{
    rows_from_records, CategoryResponseRow, DeviceRecord, EXCLUDED_PROTOCOLS,
    RESPONSE_WINDOW_SECS,
};
use iotlan_classify::flow::{dissect_frame, Flow, FlowKey, FrameEvidence, Transport};
use iotlan_classify::rules::{classify_with_rules, paper_rules, Rule};
use iotlan_devices::Catalog;
use iotlan_netsim::{Capture, FrameSink, SimDuration, SimTime, FRAME_OVERHEAD};
use iotlan_util::pool;
use iotlan_wire::ethernet::EthernetAddress;
use iotlan_wire::pcap::PcapStreamReader;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Per-key packet-time cap: below this the periodicity report is exact.
pub const EVENT_CAP: usize = 2048;

/// How long a Table 4 candidate event stays buffered behind the
/// high-water stamp. Must cover the 3 s response window plus the
/// simulator's maximum record-order/stamp skew (~30 s for delayed
/// sends); 64 s leaves a 2× margin.
pub const TABLE4_HORIZON_SECS: f64 = 64.0;

/// Buffers are pruned (and peak state re-measured) every this many packets.
const PRUNE_EVERY: u64 = 1024;

/// Completed flow records queue at most this many entries before the
/// oldest are dropped (callers that want the record stream must drain).
const RECORD_QUEUE_CAP: usize = 4096;

/// Sticky per-flow-key state. Never evicted: analyses' byte-identity
/// depends on key digests surviving to `finish`, and key cardinality —
/// unlike packet count — is bounded by the traffic's structure.
struct KeyState {
    /// Insertion-order id, the compact handle Table 4 match sets use.
    id: u32,
    /// Destination MAC of the key's first frame (multicast detection).
    dst_mac: EthernetAddress,
    /// First non-empty payload — the classifier's only payload evidence.
    first_payload: Option<Vec<u8>>,
    packets: u64,
    bytes: u64,
    /// Packet times (seconds), capped at [`EVENT_CAP`].
    events: Vec<f64>,
    events_truncated: bool,
    /// Pre-resolved graph contribution: (sorted name pair, is_tcp).
    graph_pair: Option<((String, String), bool)>,
    /// Pre-resolved Table 4 role.
    table4: Table4Role,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Table4Role {
    None,
    /// Multicast/broadcast UDP from a catalog device.
    Discovery,
    /// Unicast UDP towards a catalog device's IP (the device's MAC).
    Response(EthernetAddress),
}

/// Cumulative transport mix + volume for one device pair; resolves to a
/// batch [`Edge`] at report time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeAccum {
    pub has_tcp: bool,
    pub has_udp: bool,
    pub packets: u64,
    pub bytes: u64,
}

struct DiscEvent {
    time: f64,
    key_id: u32,
    device: EthernetAddress,
    src_port: u16,
}

struct RespEvent {
    time: f64,
    device: EthernetAddress,
    dst_port: u16,
    responder: EthernetAddress,
}

/// Bounded queue of completed flow records (the flow-table sink).
struct RecordQueue {
    records: VecDeque<FlowRecord>,
    dropped: u64,
}

impl FlowRecordSink for RecordQueue {
    fn on_flow(&mut self, record: FlowRecord) {
        if self.records.len() >= RECORD_QUEUE_CAP {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// The single-pass engine. See the module docs for the design.
pub struct StreamEngine {
    rules: Vec<Rule>,
    device_macs: BTreeSet<EthernetAddress>,
    ip_names: HashMap<Ipv4Addr, String>,
    ip_to_mac: HashMap<Ipv4Addr, EthernetAddress>,

    keys: HashMap<FlowKey, KeyState>,
    key_order: Vec<FlowKey>,

    edges: BTreeMap<(String, String), EdgeAccum>,

    disc_buffer: Vec<DiscEvent>,
    resp_buffer: Vec<RespEvent>,
    /// (discovery key id, responder MAC) — label-independent, resolved
    /// (and excluded-protocol-filtered) at finish.
    matches: BTreeSet<(u32, EthernetAddress)>,
    max_stamp_secs: f64,

    flowtab: StreamFlowTable,
    record_queue: RecordQueue,

    port_packets: CountMin,
    peer_pairs: Distinct,

    reader: PcapStreamReader,
    pcap_bytes_pushed: u64,

    packets: u64,
    bytes: u64,
    streamed_bytes: u64,
    peak_state_bytes: usize,
}

impl StreamEngine {
    pub fn new(catalog: &Catalog) -> StreamEngine {
        let mut ip_to_mac = HashMap::new();
        for device in &catalog.devices {
            // First device wins on (hypothetical) duplicate IPs, matching
            // the batch pass's `.find()`.
            ip_to_mac.entry(device.ip).or_insert(device.mac);
        }
        StreamEngine {
            rules: paper_rules(),
            device_macs: catalog.devices.iter().map(|d| d.mac).collect(),
            ip_names: catalog.ip_map(),
            ip_to_mac,
            keys: HashMap::new(),
            key_order: Vec::new(),
            edges: BTreeMap::new(),
            disc_buffer: Vec::new(),
            resp_buffer: Vec::new(),
            matches: BTreeSet::new(),
            max_stamp_secs: 0.0,
            flowtab: StreamFlowTable::new(4096, SimDuration::from_secs(300)),
            record_queue: RecordQueue {
                records: VecDeque::new(),
                dropped: 0,
            },
            port_packets: CountMin::new(1024, 4, 0x10_7a11),
            peer_pairs: Distinct::new(512, 0x10_7a12),
            reader: PcapStreamReader::new(),
            pcap_bytes_pushed: 0,
            packets: 0,
            bytes: 0,
            streamed_bytes: 0,
            peak_state_bytes: 0,
        }
    }

    /// Replace the bounded flow table (capacity / idle timeout / record
    /// timestamp cap) used for the completed-flow record stream.
    pub fn with_flow_table(mut self, flowtab: StreamFlowTable) -> StreamEngine {
        self.flowtab = flowtab;
        self
    }

    /// Feed raw pcap file bytes; any chunking (down to one byte) yields
    /// identical results. Errors are the same the batch `read_pcap` would
    /// report, except that truncation is only diagnosed at [`finish`].
    ///
    /// [`finish`]: StreamEngine::finish
    pub fn push_pcap_chunk(&mut self, chunk: &[u8]) -> Result<(), iotlan_wire::Error> {
        self.pcap_bytes_pushed += chunk.len() as u64;
        self.reader.push(chunk);
        while let Some(packet) = self.reader.next_packet()? {
            let time = SimTime(
                u64::from(packet.ts_sec) * 1_000_000 + u64::from(packet.ts_usec),
            );
            self.on_frame(time, &packet.data);
        }
        Ok(())
    }

    /// Completed flow records retired so far (drains the internal queue).
    pub fn drain_completed_flows(&mut self) -> Vec<FlowRecord> {
        self.record_queue.records.drain(..).collect()
    }

    /// Packets consumed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Current (not peak) resident state estimate in bytes.
    pub fn state_bytes(&self) -> usize {
        let mut total = 0usize;
        for (key, state) in &self.keys {
            let _ = key;
            total += std::mem::size_of::<FlowKey>() + std::mem::size_of::<KeyState>();
            total += state.first_payload.as_ref().map_or(0, |p| p.len());
            total += state.events.len() * 8;
            if let Some(((a, b), _)) = &state.graph_pair {
                total += a.len() + b.len();
            }
        }
        total += self.key_order.len() * std::mem::size_of::<FlowKey>();
        total += self.disc_buffer.len() * std::mem::size_of::<DiscEvent>();
        total += self.resp_buffer.len() * std::mem::size_of::<RespEvent>();
        total += self.matches.len() * 32;
        for ((a, b), _) in &self.edges {
            total += a.len() + b.len() + std::mem::size_of::<EdgeAccum>() + 48;
        }
        total += self.port_packets.state_bytes() + self.peer_pairs.state_bytes();
        total += self.flowtab.state_bytes();
        total += self
            .record_queue
            .records
            .iter()
            .map(|r| std::mem::size_of::<FlowRecord>() + r.timestamps.len() * 8)
            .sum::<usize>();
        total += self.reader.buffered_bytes();
        total
    }

    fn prune_and_measure(&mut self) {
        let horizon = self.max_stamp_secs - TABLE4_HORIZON_SECS;
        self.disc_buffer.retain(|e| e.time >= horizon);
        self.resp_buffer.retain(|e| e.time >= horizon);
        let state = self.state_bytes();
        if state > self.peak_state_bytes {
            self.peak_state_bytes = state;
        }
    }

    /// Finish the pass and build the report. Fails only when pcap bytes
    /// were pushed and the image was malformed or truncated mid-record.
    pub fn finish(mut self) -> Result<StreamReport, iotlan_wire::Error> {
        let _span = iotlan_telemetry::span!("stream.finish");
        if self.pcap_bytes_pushed > 0 {
            self.reader.finish()?;
        }
        self.prune_and_measure();

        // Resolve every key's label once, with exactly the evidence the
        // batch classifier would see on the assembled flow.
        let mut labels: Vec<&'static str> = Vec::with_capacity(self.key_order.len());
        let mut protocol_packets = CountMin::new(1024, 4, 0x10_7a13);
        for key in &self.key_order {
            let state = &self.keys[key];
            let synthetic = Flow {
                key: *key,
                packets: state.packets,
                bytes: state.bytes,
                first_seen: SimTime::ZERO,
                last_seen: SimTime::ZERO,
                dst_mac: state.dst_mac,
                payload_samples: state.first_payload.iter().cloned().collect(),
                timestamps: Vec::new(),
            };
            let label = classify_with_rules(&synthetic, &self.rules);
            protocol_packets.insert_weighted(label.as_bytes(), state.packets);
            labels.push(label);
        }

        // Fig. 2: per-device observed-protocol sets.
        let mut observations: BTreeMap<EthernetAddress, BTreeSet<String>> = BTreeMap::new();
        for (key, label) in self.key_order.iter().zip(&labels) {
            if !self.device_macs.contains(&key.src_mac) {
                continue;
            }
            let set = observations.entry(key.src_mac).or_default();
            set.insert((*label).to_string());
            if key.src_ip.is_some() {
                set.insert("IPv4".into());
            }
        }

        // Table 4: discovery sets + match resolution, now that labels and
        // therefore the excluded-protocol filter are known.
        let mut records: BTreeMap<EthernetAddress, DeviceRecord> = BTreeMap::new();
        for (key, label) in self.key_order.iter().zip(&labels) {
            let state = &self.keys[key];
            if state.table4 == Table4Role::Discovery && !EXCLUDED_PROTOCOLS.contains(label) {
                records
                    .entry(key.src_mac)
                    .or_default()
                    .discovery_protocols
                    .insert((*label).to_string());
            }
        }
        for &(key_id, responder) in &self.matches {
            let key = &self.key_order[key_id as usize];
            let label = labels[key_id as usize];
            if EXCLUDED_PROTOCOLS.contains(&label) {
                continue;
            }
            let record = records.entry(key.src_mac).or_default();
            record.protocols_with_response.insert(label.to_string());
            record.responders.insert(responder);
        }

        // App. D.1: assemble (source, destination, protocol) groups from
        // the per-key event lists; sorting makes arrival order irrelevant.
        let mut periodicity_groups: BTreeMap<GroupKey, Vec<f64>> = BTreeMap::new();
        let mut periodicity_exact = true;
        for (key, label) in self.key_order.iter().zip(&labels) {
            let state = &self.keys[key];
            periodicity_exact &= !state.events_truncated;
            let group_key = GroupKey {
                src_mac: key.src_mac,
                destination: destination_bucket_of(state.dst_mac, key.dst_ip),
                protocol: (*label).to_string(),
            };
            periodicity_groups
                .entry(group_key)
                .or_default()
                .extend_from_slice(&state.events);
        }
        for events in periodicity_groups.values_mut() {
            events.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }

        let flows_retired = self.flowtab.retired();
        let mut queue = RecordQueue {
            records: std::mem::take(&mut self.record_queue.records),
            dropped: self.record_queue.dropped,
        };
        self.flowtab.finish(&mut queue);

        Ok(StreamReport {
            packets: self.packets,
            bytes: self.bytes,
            streamed_bytes: self.streamed_bytes,
            peak_state_bytes: self.peak_state_bytes,
            flow_keys: self.key_order.len(),
            edges: self.edges,
            observations,
            records,
            periodicity_groups,
            periodicity_exact,
            port_packets: self.port_packets,
            protocol_packets,
            peer_pairs: self.peer_pairs,
            flows_retired,
            records_dropped: queue.dropped,
            final_records: queue.records.into_iter().collect(),
        })
    }
}

impl FrameSink for StreamEngine {
    fn on_frame(&mut self, time: SimTime, data: &[u8]) {
        iotlan_telemetry::counter!("stream.packets").incr();
        self.packets += 1;
        self.bytes += data.len() as u64;
        self.streamed_bytes += (FRAME_OVERHEAD + data.len()) as u64;

        let secs = time.as_secs_f64();
        if secs > self.max_stamp_secs {
            self.max_stamp_secs = secs;
        }

        // Flow-record stream (bounded table, independent of the sticky
        // analysis state).
        self.flowtab.add_frame(time, data, &mut self.record_queue);

        let Some(FrameEvidence {
            key,
            dst_mac,
            payload,
        }) = dissect_frame(data)
        else {
            return;
        };

        // Sketches: per-packet, key-independent.
        self.port_packets.insert(&key.dst_port.to_le_bytes());
        let mut pair = [0u8; 12];
        pair[..6].copy_from_slice(&key.src_mac.0);
        pair[6..].copy_from_slice(&dst_mac.0);
        self.peer_pairs.insert(&pair);
        iotlan_telemetry::counter!("stream.sketch_updates").add(2);

        // Sticky per-key state.
        let is_new = !self.keys.contains_key(&key);
        if is_new {
            iotlan_telemetry::counter!("stream.flow_keys_created").incr();
            let multicast = dst_mac.is_multicast();
            let is_udp = matches!(key.transport, Transport::Udp | Transport::UdpV6);
            let graph_pair = if matches!(key.transport, Transport::Tcp | Transport::Udp)
                && !multicast
            {
                match (key.src_ip, key.dst_ip) {
                    (Some(src_ip), Some(dst_ip)) => {
                        match (self.ip_names.get(&src_ip), self.ip_names.get(&dst_ip)) {
                            (Some(src), Some(dst)) if src != dst => {
                                let pair = if src < dst {
                                    (src.clone(), dst.clone())
                                } else {
                                    (dst.clone(), src.clone())
                                };
                                Some((pair, key.transport == Transport::Tcp))
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                }
            } else {
                None
            };
            let table4 = if is_udp && multicast && self.device_macs.contains(&key.src_mac) {
                Table4Role::Discovery
            } else if is_udp && !multicast {
                match key.dst_ip.and_then(|ip| self.ip_to_mac.get(&ip)) {
                    Some(&mac) => Table4Role::Response(mac),
                    None => Table4Role::None,
                }
            } else {
                Table4Role::None
            };
            let id = self.key_order.len() as u32;
            self.key_order.push(key);
            self.keys.insert(
                key,
                KeyState {
                    id,
                    dst_mac,
                    first_payload: None,
                    packets: 0,
                    bytes: 0,
                    events: Vec::new(),
                    events_truncated: false,
                    graph_pair,
                    table4,
                },
            );
        }
        let state = self.keys.get_mut(&key).expect("key just ensured");
        state.packets += 1;
        state.bytes += data.len() as u64;
        if state.events.len() < EVENT_CAP {
            state.events.push(secs);
        } else {
            state.events_truncated = true;
        }
        if state.first_payload.is_none() {
            if let Some(p) = payload {
                if !p.is_empty() {
                    state.first_payload = Some(p.to_vec());
                }
            }
        }

        // Fig. 1/4 graph: additive per-packet update.
        if let Some(((a, b), is_tcp)) = &state.graph_pair {
            let accum = self
                .edges
                .entry((a.clone(), b.clone()))
                .or_default();
            accum.packets += 1;
            accum.bytes += data.len() as u64;
            if *is_tcp {
                accum.has_tcp = true;
            } else {
                accum.has_udp = true;
            }
        }

        // Table 4: event buffers + bidirectional window matching. The
        // window test reproduces the batch f64 arithmetic bit-for-bit:
        // delta = response_secs - discovery_secs ∈ [0, 3].
        match state.table4 {
            Table4Role::Discovery => {
                let key_id = state.id;
                for resp in &self.resp_buffer {
                    if resp.device != key.src_mac || resp.dst_port != key.src_port {
                        continue;
                    }
                    let delta = resp.time - secs;
                    if (0.0..=RESPONSE_WINDOW_SECS).contains(&delta) {
                        self.matches.insert((key_id, resp.responder));
                    }
                }
                self.disc_buffer.push(DiscEvent {
                    time: secs,
                    key_id,
                    device: key.src_mac,
                    src_port: key.src_port,
                });
            }
            Table4Role::Response(device_mac) => {
                for disc in &self.disc_buffer {
                    if disc.device != device_mac || disc.src_port != key.dst_port {
                        continue;
                    }
                    let delta = secs - disc.time;
                    if (0.0..=RESPONSE_WINDOW_SECS).contains(&delta) {
                        self.matches.insert((disc.key_id, key.src_mac));
                    }
                }
                self.resp_buffer.push(RespEvent {
                    time: secs,
                    device: device_mac,
                    dst_port: key.dst_port,
                    responder: key.src_mac,
                });
            }
            Table4Role::None => {}
        }

        if self.packets % PRUNE_EVERY == 0 {
            self.prune_and_measure();
        }
    }
}

/// The engine's output: mergeable raw accumulators plus accessors that
/// render them through the *batch* analysis code paths.
#[derive(Debug, Clone)]
pub struct StreamReport {
    pub packets: u64,
    pub bytes: u64,
    /// What an in-memory `Capture` of the same packets would occupy —
    /// the baseline for the bounded-memory claim.
    pub streamed_bytes: u64,
    /// Peak resident streaming state (max across merged shards).
    pub peak_state_bytes: usize,
    /// Distinct flow keys observed.
    pub flow_keys: usize,
    pub edges: BTreeMap<(String, String), EdgeAccum>,
    pub observations: BTreeMap<EthernetAddress, BTreeSet<String>>,
    pub records: BTreeMap<EthernetAddress, DeviceRecord>,
    pub periodicity_groups: BTreeMap<GroupKey, Vec<f64>>,
    /// True when no per-key event list hit [`EVENT_CAP`].
    pub periodicity_exact: bool,
    pub port_packets: CountMin,
    pub protocol_packets: CountMin,
    pub peer_pairs: Distinct,
    /// Flow records retired by eviction during the pass.
    pub flows_retired: u64,
    /// Records dropped because nobody drained the queue.
    pub records_dropped: u64,
    /// Records still live at finish (undrained tail of the record stream).
    pub final_records: Vec<FlowRecord>,
}

impl StreamReport {
    /// The Fig. 1/4 device graph, identical to
    /// `iotlan_analysis::graph::build_graph` on the batch flow table.
    pub fn graph(&self, catalog: &Catalog) -> DeviceGraph {
        let mut graph = DeviceGraph {
            nodes: catalog.devices.iter().map(|d| d.name.clone()).collect(),
            ..Default::default()
        };
        for (pair, accum) in &self.edges {
            let kind = match (accum.has_tcp, accum.has_udp) {
                (true, true) => EdgeKind::Both,
                (true, false) => EdgeKind::Tcp,
                _ => EdgeKind::Udp,
            };
            graph.edges.insert(
                pair.clone(),
                Edge {
                    kind,
                    packets: accum.packets,
                    bytes: accum.bytes,
                },
            );
        }
        graph
    }

    /// Fig. 2 passive prevalence, identical to
    /// `iotlan_analysis::prevalence::passive_prevalence`.
    pub fn prevalence(&self, catalog: &Catalog) -> Prevalence {
        prevalence_from_observations(&self.observations, catalog)
    }

    /// Table 4 rows, identical to
    /// `iotlan_analysis::responses::discovery_responses`.
    pub fn discovery_response_rows(&self, catalog: &Catalog) -> Vec<CategoryResponseRow> {
        rows_from_records(&self.records, catalog)
    }

    /// App. D.1 periodicity, identical to
    /// `iotlan_analysis::periodicity::analyze_periodicity` whenever
    /// [`periodicity_exact`](StreamReport::periodicity_exact) is true.
    pub fn periodicity(&self) -> PeriodicityReport {
        let groups = self
            .periodicity_groups
            .iter()
            .map(|(key, events)| {
                let events = events.clone();
                let period = interval_regularity_periodic(&events)
                    .or_else(|| autocorrelation_periodic(&events))
                    .or_else(|| dft_periodic(&events));
                let discovery = DISCOVERY_PROTOCOLS.contains(&key.protocol.as_str());
                Group {
                    decidable: events.len() >= 4,
                    periodic: period.is_some(),
                    period_secs: period,
                    discovery,
                    key: key.clone(),
                    events,
                }
            })
            .collect();
        PeriodicityReport { groups }
    }

    /// Run manifest for a completed streaming pass: the bounded-memory
    /// claims (peak state vs. streamed bytes), flow-table pressure, and
    /// content digests of the rendered Fig. 1/2 artifacts. Everything in
    /// the deterministic section is a pure function of the input capture,
    /// so the manifest is byte-identical across thread counts.
    pub fn manifest(&self, catalog: &Catalog) -> iotlan_telemetry::Manifest {
        let mut manifest = iotlan_telemetry::Manifest::new("stream_pass");
        manifest.set("packets", self.packets);
        manifest.set("bytes", self.bytes);
        manifest.set("streamed_bytes", self.streamed_bytes);
        manifest.set("peak_state_bytes", self.peak_state_bytes);
        manifest.set("flow_keys", self.flow_keys);
        manifest.set("edges", self.edges.len());
        manifest.set("observed_devices", self.observations.len());
        manifest.set("discovery_records", self.records.len());
        manifest.set("periodicity_groups", self.periodicity_groups.len());
        manifest.set("periodicity_exact", self.periodicity_exact);
        manifest.set("flows_retired", self.flows_retired);
        manifest.set("records_dropped", self.records_dropped);
        manifest.set("final_records", self.final_records.len());
        manifest.digest("graph.txt", self.graph(catalog).render().as_bytes());
        manifest.digest("prevalence.txt", self.prevalence(catalog).render().as_bytes());
        manifest.attach_metrics();
        manifest.attach_host_info();
        manifest
    }

    /// Merge another shard's report into this one (call in input order so
    /// merged reports are deterministic regardless of thread count).
    /// Additive accumulators sum, sets union, sketches merge; peak state
    /// takes the max, since shards stream concurrently, each within its
    /// own bound.
    pub fn merge(&mut self, other: &StreamReport) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.streamed_bytes += other.streamed_bytes;
        self.peak_state_bytes = self.peak_state_bytes.max(other.peak_state_bytes);
        self.flow_keys += other.flow_keys;
        for (pair, accum) in &other.edges {
            let mine = self.edges.entry(pair.clone()).or_default();
            mine.has_tcp |= accum.has_tcp;
            mine.has_udp |= accum.has_udp;
            mine.packets += accum.packets;
            mine.bytes += accum.bytes;
        }
        for (mac, protocols) in &other.observations {
            self.observations
                .entry(*mac)
                .or_default()
                .extend(protocols.iter().cloned());
        }
        for (mac, record) in &other.records {
            self.records.entry(*mac).or_default().merge(record);
        }
        for (key, events) in &other.periodicity_groups {
            let mine = self.periodicity_groups.entry(key.clone()).or_default();
            mine.extend_from_slice(events);
            mine.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        self.periodicity_exact &= other.periodicity_exact;
        self.port_packets.merge(&other.port_packets);
        self.protocol_packets.merge(&other.protocol_packets);
        self.peer_pairs.merge(&other.peer_pairs);
        self.flows_retired += other.flows_retired;
        self.records_dropped += other.records_dropped;
        self.final_records.extend(other.final_records.iter().cloned());
    }
}

/// Stream one capture through a fresh engine.
pub fn stream_capture(capture: &Capture, catalog: &Catalog) -> StreamReport {
    let mut engine = StreamEngine::new(catalog);
    capture.stream_into(&mut engine);
    engine
        .finish()
        .expect("frame-fed engines cannot fail at finish")
}

/// Household sharding: stream each capture on the deterministic pool and
/// merge the reports in input order. With disjoint households (separate
/// networks, as in the paper's crowd-scale analysis) the merged report
/// equals streaming the concatenated traffic; the result is bit-identical
/// at any `IOTLAN_THREADS` setting because per-shard work is independent
/// and the merge order is the input order.
pub fn stream_captures_sharded(captures: &[Capture], catalog: &Catalog) -> StreamReport {
    let reports = pool::par_map(captures, |_, capture| stream_capture(capture, catalog));
    let mut merged: Option<StreamReport> = None;
    for report in reports {
        match &mut merged {
            Some(m) => m.merge(&report),
            None => merged = Some(report),
        }
    }
    merged.unwrap_or_else(|| {
        StreamEngine::new(catalog)
            .finish()
            .expect("empty engine cannot fail")
    })
}

/// Pcap-shard variant of [`stream_captures_sharded`]: each shard is a pcap
/// file image, fed to its engine in `chunk_size`-byte chunks.
pub fn stream_pcaps_sharded(
    shards: &[Vec<u8>],
    chunk_size: usize,
    catalog: &Catalog,
) -> Result<StreamReport, iotlan_wire::Error> {
    let chunk_size = chunk_size.max(1);
    let reports = pool::par_map(shards, |_, image| -> Result<StreamReport, iotlan_wire::Error> {
        let mut engine = StreamEngine::new(catalog);
        for chunk in image.chunks(chunk_size) {
            engine.push_pcap_chunk(chunk)?;
        }
        engine.finish()
    });
    let mut merged: Option<StreamReport> = None;
    for report in reports {
        let report = report?;
        match &mut merged {
            Some(m) => m.merge(&report),
            None => merged = Some(report),
        }
    }
    match merged {
        Some(m) => Ok(m),
        None => Ok(StreamEngine::new(catalog)
            .finish()
            .expect("empty engine cannot fail")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotlan_classify::flow::FlowTable;
    use iotlan_devices::build_testbed;
    use iotlan_netsim::stack::{self, Endpoint};

    fn endpoint_of(catalog: &Catalog, name: &str) -> Endpoint {
        let d = catalog.find(name).unwrap();
        Endpoint { mac: d.mac, ip: d.ip }
    }

    /// A small synthetic capture exercising every accumulator: unicast
    /// UDP/TCP between devices (graph), mDNS multicast (prevalence +
    /// discovery), an SSDP M-SEARCH with a unicast reply (Table 4), and a
    /// periodic beacon.
    fn synthetic_capture(catalog: &Catalog) -> Capture {
        let nest = endpoint_of(catalog, "Google Nest Hub");
        let home = endpoint_of(catalog, "Google Home");
        let hue = endpoint_of(catalog, "Philips Hue Bridge");
        let mut frames: Vec<(SimTime, Vec<u8>)> = Vec::new();
        for i in 0..30u64 {
            frames.push((
                SimTime::from_secs(10 + i * 20),
                stack::udp_multicast(
                    nest,
                    Ipv4Addr::new(224, 0, 0, 251),
                    5353,
                    5353,
                    &iotlan_wire::dns::Message::mdns_query(&[(
                        "_googlecast._tcp.local",
                        iotlan_wire::dns::RecordType::Ptr,
                    )])
                    .to_bytes(),
                ),
            ));
        }
        frames.push((
            SimTime::from_secs(15),
            stack::udp_unicast(nest, home, 10001, 10002, b"cast-data"),
        ));
        frames.push((
            SimTime::from_secs(16),
            stack::tcp_segment(
                home,
                nest,
                &iotlan_wire::tcp::Repr::syn(40000, 8009, 1),
                &[],
            ),
        ));
        let msearch = iotlan_wire::ssdp::Message::msearch("ssdp:all", 2).to_bytes();
        frames.push((
            SimTime::from_secs(50),
            stack::udp_multicast(
                nest,
                Ipv4Addr::new(239, 255, 255, 250),
                51234,
                1900,
                &msearch,
            ),
        ));
        let reply = iotlan_wire::ssdp::Message::response("upnp:rootdevice", "uuid-hue", None, None)
            .to_bytes();
        frames.push((
            SimTime::from_secs(51),
            stack::udp_unicast(hue, nest, 1900, 51234, &reply),
        ));
        frames.sort_by_key(|(time, _)| *time);
        Capture::from_frames(frames)
    }

    fn assert_equivalent(capture: &Capture, catalog: &Catalog, report: &StreamReport) {
        let table = FlowTable::from_capture(capture);
        let batch_graph = iotlan_analysis::graph::build_graph(&table, catalog);
        assert_eq!(report.graph(catalog).render(), batch_graph.render());
        let batch_prev = iotlan_analysis::prevalence::passive_prevalence(&table, catalog);
        assert_eq!(report.prevalence(catalog).render(), batch_prev.render());
        let batch_rows = iotlan_analysis::responses::discovery_responses(&table, catalog);
        assert_eq!(
            iotlan_analysis::responses::render(&report.discovery_response_rows(catalog)),
            iotlan_analysis::responses::render(&batch_rows),
        );
        assert!(report.periodicity_exact);
        let stream_period = report.periodicity();
        let batch_period = iotlan_analysis::periodicity::analyze_periodicity(&table);
        assert_eq!(stream_period.groups.len(), batch_period.groups.len());
        for (s, b) in stream_period.groups.iter().zip(&batch_period.groups) {
            assert_eq!(s.key, b.key);
            assert_eq!(s.events, b.events);
            assert_eq!(s.periodic, b.periodic);
            assert_eq!(s.period_secs, b.period_secs);
        }
    }

    #[test]
    fn frame_fed_engine_matches_batch() {
        let catalog = build_testbed();
        let capture = synthetic_capture(&catalog);
        let report = stream_capture(&capture, &catalog);
        assert_eq!(report.packets, capture.frames().len() as u64);
        assert_equivalent(&capture, &catalog, &report);
        // The SSDP reply must have matched: Hue responded to the Nest Hub.
        let hub_mac = catalog.find("Google Nest Hub").unwrap().mac;
        let record = &report.records[&hub_mac];
        assert!(record.protocols_with_response.contains("SSDP"));
        assert_eq!(record.responders.len(), 1);
    }

    #[test]
    fn pcap_fed_engine_matches_at_any_chunk_size() {
        let catalog = build_testbed();
        let capture = synthetic_capture(&catalog);
        let image = capture.to_pcap();
        let whole = {
            let mut engine = StreamEngine::new(&catalog);
            engine.push_pcap_chunk(&image).unwrap();
            engine.finish().unwrap()
        };
        assert_equivalent(&capture, &catalog, &whole);
        for chunk_size in [1usize, 7, 4096] {
            let mut engine = StreamEngine::new(&catalog);
            for chunk in image.chunks(chunk_size) {
                engine.push_pcap_chunk(chunk).unwrap();
            }
            let report = engine.finish().unwrap();
            assert_eq!(report.packets, whole.packets);
            assert_equivalent(&capture, &catalog, &report);
        }
    }

    #[test]
    fn sharded_merge_is_input_ordered_and_thread_invariant() {
        let catalog = build_testbed();
        let capture = synthetic_capture(&catalog);
        let shards: Vec<Capture> = vec![capture.clone(), capture.clone(), capture];
        let summarize = |r: &StreamReport| {
            (
                r.packets,
                r.graph(&catalog).render(),
                r.prevalence(&catalog).render(),
                r.peer_pairs.estimate().to_bits(),
            )
        };
        let base = summarize(&stream_captures_sharded(&shards, &catalog));
        for threads in [1usize, 4] {
            let report = pool::with_threads(threads, || stream_captures_sharded(&shards, &catalog));
            assert_eq!(summarize(&report), base);
        }
    }

    #[test]
    fn truncated_pcap_fails_at_finish_only() {
        let catalog = build_testbed();
        let capture = synthetic_capture(&catalog);
        let image = capture.to_pcap();
        let mut engine = StreamEngine::new(&catalog);
        engine.push_pcap_chunk(&image[..image.len() - 3]).unwrap();
        assert!(matches!(
            engine.finish(),
            Err(iotlan_wire::Error::Truncated)
        ));
    }

    #[test]
    fn peak_state_is_tracked_and_bounded() {
        let catalog = build_testbed();
        let capture = synthetic_capture(&catalog);
        let report = stream_capture(&capture, &catalog);
        assert!(report.peak_state_bytes > 0);
        assert!(report.streamed_bytes > 0);
    }
}
