//! Std-only probabilistic sketches for crowd-scale counters.
//!
//! Two summaries the streaming engine keeps beside its exact figure
//! accumulators, for quantities whose exact form is O(cardinality) at crowd
//! scale:
//!
//! * [`CountMin`] — frequency estimation (protocol / port packet counts).
//!   **Overestimate-only**: for any key, `estimate(key) >= true_count`,
//!   always; and `estimate(key) <= true_count + (e / width) * N` with
//!   probability at least `1 - exp(-depth)`, where `N` is the total count
//!   inserted (Cormode & Muthukrishnan's bound with `w = ceil(e/eps)`,
//!   `d = ceil(ln(1/delta))`).
//! * [`Distinct`] — a k-minimum-values (KMV) distinct counter. Keeps the
//!   `k` smallest 64-bit hashes seen; estimates `|S| ≈ (k-1) / R(k-th min)`
//!   where `R` normalizes the hash to (0,1]. Relative standard error is
//!   about `1/sqrt(k-2)` (~4.5% at k=512). Exact below `k` distinct keys.
//!
//! Both merge associatively and commutatively (same shape/seed required),
//! so household shards can be combined in any grouping — the engine merges
//! them in input order for determinism of the *reported* structures, but
//! the estimates themselves are order-free.
//!
//! Hashing is seeded splitmix64 over the key bytes — deterministic across
//! runs and platforms, independent of Rust's `Hash`.

/// splitmix64 finalizer: the mixing core of the seeded byte hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded, deterministic 64-bit hash of a byte string.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut state = splitmix64(seed ^ 0x6a09_e667_f3bc_c909);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = splitmix64(state ^ u64::from_le_bytes(word));
    }
    // Fold in the length so "a" + "" and "" + "a" style extensions differ.
    splitmix64(state ^ (bytes.len() as u64))
}

/// Count-Min sketch: `depth` rows of `width` counters; every insert bumps
/// one counter per row, estimates take the row-wise minimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMin {
    width: usize,
    seeds: Vec<u64>,
    rows: Vec<Vec<u64>>,
    /// Total weight inserted (the `N` of the error bound).
    total: u64,
}

impl CountMin {
    /// `width` counters per row (use ~`ceil(e/eps)` for additive error
    /// `eps * N`), `depth` independent rows (failure probability
    /// `exp(-depth)`), derived deterministically from `seed`.
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMin {
        assert!(width > 0 && depth > 0);
        CountMin {
            width,
            seeds: (0..depth as u64).map(|i| splitmix64(seed ^ i)).collect(),
            rows: vec![vec![0; width]; depth],
            total: 0,
        }
    }

    pub fn insert(&mut self, key: &[u8]) {
        self.insert_weighted(key, 1);
    }

    pub fn insert_weighted(&mut self, key: &[u8], weight: u64) {
        for (row, &seed) in self.rows.iter_mut().zip(&self.seeds) {
            let slot = (hash_bytes(seed, key) % self.width as u64) as usize;
            row[slot] += weight;
        }
        self.total += weight;
    }

    /// Never under the true count; over by at most `(e/width) * total()`
    /// with probability `1 - exp(-depth)`.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        self.rows
            .iter()
            .zip(&self.seeds)
            .map(|(row, &seed)| row[(hash_bytes(seed, key) % self.width as u64) as usize])
            .min()
            .unwrap_or(0)
    }

    /// Total weight inserted across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Counter-wise addition. Panics if shapes or seeds differ — merging
    /// sketches built with different parameters is meaningless.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.width, other.width, "CountMin width mismatch");
        assert_eq!(self.seeds, other.seeds, "CountMin seed mismatch");
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += *b;
            }
        }
        self.total += other.total;
    }

    /// Resident bytes, for peak-state accounting.
    pub fn state_bytes(&self) -> usize {
        self.rows.len() * self.width * 8 + self.seeds.len() * 8
    }
}

/// k-minimum-values distinct counter over 64-bit hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distinct {
    k: usize,
    seed: u64,
    /// The k smallest distinct hashes seen, ascending.
    minima: Vec<u64>,
}

impl Distinct {
    pub fn new(k: usize, seed: u64) -> Distinct {
        assert!(k >= 3, "KMV needs k >= 3 for a usable estimate");
        Distinct {
            k,
            seed,
            minima: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: &[u8]) {
        let hash = hash_bytes(self.seed, key);
        match self.minima.binary_search(&hash) {
            Ok(_) => {} // already present
            Err(position) => {
                if self.minima.len() < self.k {
                    self.minima.insert(position, hash);
                } else if position < self.k {
                    self.minima.insert(position, hash);
                    self.minima.pop();
                }
            }
        }
    }

    /// Estimated number of distinct keys inserted. Exact while fewer than
    /// `k` distinct hashes have been seen; `(k-1) / R(k-th minimum)`
    /// otherwise, with relative standard error ≈ `1/sqrt(k-2)`.
    pub fn estimate(&self) -> f64 {
        if self.minima.len() < self.k {
            return self.minima.len() as f64;
        }
        let kth = *self.minima.last().unwrap();
        // Normalize to (0, 1]: hash / 2^64, guarding the zero hash.
        let normalized = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / normalized
    }

    /// Union merge: keep the k smallest of both sides' minima. Associative,
    /// commutative and idempotent (it is a set union).
    pub fn merge(&mut self, other: &Distinct) {
        assert_eq!(self.k, other.k, "KMV k mismatch");
        assert_eq!(self.seed, other.seed, "KMV seed mismatch");
        let mut union: Vec<u64> = Vec::with_capacity(self.minima.len() + other.minima.len());
        union.extend_from_slice(&self.minima);
        union.extend_from_slice(&other.minima);
        union.sort_unstable();
        union.dedup();
        union.truncate(self.k);
        self.minima = union;
    }

    pub fn state_bytes(&self) -> usize {
        self.k * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_never_underestimates() {
        let mut sketch = CountMin::new(64, 4, 7);
        for i in 0..500u32 {
            // Heavily skewed: key 0 gets many inserts.
            let key = (i % 10).to_le_bytes();
            sketch.insert(&key);
        }
        for key in 0..10u32 {
            assert!(sketch.estimate(&key.to_le_bytes()) >= 50);
        }
        assert_eq!(sketch.total(), 500);
    }

    #[test]
    fn count_min_merge_is_sum() {
        let mut a = CountMin::new(128, 3, 1);
        let mut b = CountMin::new(128, 3, 1);
        a.insert_weighted(b"x", 10);
        b.insert_weighted(b"x", 32);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.estimate(b"x") >= 42);
        assert_eq!(merged.total(), 42);
    }

    #[test]
    fn distinct_exact_below_k() {
        let mut sketch = Distinct::new(64, 3);
        for i in 0..50u64 {
            sketch.insert(&i.to_le_bytes());
            sketch.insert(&i.to_le_bytes()); // duplicates don't count
        }
        assert_eq!(sketch.estimate(), 50.0);
    }

    #[test]
    fn distinct_estimates_above_k() {
        let mut sketch = Distinct::new(512, 9);
        let n = 20_000u64;
        for i in 0..n {
            sketch.insert(&i.to_le_bytes());
        }
        let estimate = sketch.estimate();
        let relative = (estimate - n as f64).abs() / n as f64;
        // 1/sqrt(k-2) ≈ 4.4%; allow 4 sigma.
        assert!(relative < 0.18, "relative error {relative}");
    }

    #[test]
    fn distinct_merge_idempotent_and_commutative() {
        let mut a = Distinct::new(32, 5);
        let mut b = Distinct::new(32, 5);
        for i in 0..100u64 {
            a.insert(&i.to_le_bytes());
        }
        for i in 50..150u64 {
            b.insert(&i.to_le_bytes());
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut self_merge = a.clone();
        self_merge.merge(&a);
        assert_eq!(self_merge, a);
    }

    #[test]
    fn hash_is_stable_and_length_aware() {
        assert_eq!(hash_bytes(1, b"abc"), hash_bytes(1, b"abc"));
        assert_ne!(hash_bytes(1, b"abc"), hash_bytes(2, b"abc"));
        assert_ne!(hash_bytes(1, b"a"), hash_bytes(1, b"a\0"));
    }
}
