//! # iotlan-stream: single-pass, bounded-memory streaming analysis
//!
//! The batch pipeline loads a whole capture (or pcap file) into memory,
//! assembles every flow with its full packet-time list, and only then runs
//! the figure/table analyses. That is faithful to how the paper's authors
//! post-processed their 366K-packet corpus, but it makes memory scale with
//! capture length — a five-day household trace should not need to be
//! resident to answer "which protocols does each device speak?".
//!
//! This crate computes the same answers in one pass over the packets with
//! state bounded by the *structure* of the traffic (flow-key cardinality,
//! device count, correlation-window depth), not by its length:
//!
//! * [`engine::StreamEngine`] — the single-pass engine. Feed it frames
//!   (it implements [`iotlan_netsim::FrameSink`]) or raw pcap bytes in
//!   arbitrary chunks (via `iotlan_wire::pcap::PcapStreamReader`); call
//!   [`engine::StreamEngine::finish`] for a [`engine::StreamReport`].
//! * [`flowtab::StreamFlowTable`] — a bounded flow table with
//!   deterministic LRU + idle-timeout eviction that emits completed
//!   [`flowtab::FlowRecord`]s to a sink as they retire.
//! * [`sketch`] — std-only probabilistic sketches (Count-Min, KMV
//!   distinct counter) with documented error bounds, for crowd-scale
//!   supplementary counters.
//! * [`crowd`] — bounded-memory identifier-space estimation over the
//!   IoT-Inspector crowdsourced dataset, replacing the batch Table 2
//!   global identifier sets with KMV sketches.
//!
//! ## Determinism and batch equivalence
//!
//! For any capture, the engine's figure/table outputs (Fig. 1/4 graph,
//! Fig. 2 passive prevalence, Table 4 discovery→response rows, and —
//! below the per-key event cap — the App. D.1 periodicity report) are
//! byte-identical to the batch pipeline's, regardless of how the input
//! was chunked and at any thread count. See `DESIGN.md` §7 for the
//! argument; `tests/stream_equivalence.rs` enforces it.

pub mod crowd;
pub mod engine;
pub mod flowtab;
pub mod sketch;

pub use crowd::{estimate_identifier_space, IdentifierSpaceEstimate};
pub use engine::{StreamEngine, StreamReport};
pub use flowtab::{FlowRecord, FlowRecordSink, StreamFlowTable};
