//! Crowd-scale identifier-space estimation over IoT-Inspector datasets.
//!
//! The batch Table 2 analysis (`iotlan_inspector::entropy::analyze`)
//! materializes global sets of every name/UUID/MAC string in the dataset
//! to compute the per-type value-space entropy `log2(distinct values)` —
//! O(identifier cardinality) memory, which is exactly what stops scaling
//! first on a crowd feed. This module streams the same extraction
//! (`entropy::extract_device_identifiers`, shared with the batch path)
//! into KMV [`Distinct`] sketches instead: O(k) memory per identifier
//! type, relative standard error ≈ `1/sqrt(k-2)` on the distinct counts,
//! and therefore ≈ `log2(1 ± ε)` ≈ 1.44·ε bits of error on the entropy.
//!
//! Households fan out over the deterministic pool and the per-household
//! sketches merge in input order. KMV union is associative and
//! commutative, so the merged sketches — and every estimate derived from
//! them — are bit-identical at any `IOTLAN_THREADS` setting.

use crate::sketch::Distinct;
use iotlan_inspector::dataset::Dataset;
use iotlan_inspector::entropy::extract_device_identifiers;
use iotlan_util::pool;

/// Sketched global identifier value-spaces for one dataset.
#[derive(Debug, Clone)]
pub struct IdentifierSpaceEstimate {
    pub names: Distinct,
    pub uuids: Distinct,
    pub macs: Distinct,
    /// Devices carrying discovery payloads (exact; it's a sum, not a set).
    pub analyzed_devices: u64,
}

impl IdentifierSpaceEstimate {
    /// Estimated `log2(distinct values)` for one sketch — the per-type
    /// entropy column the Table 2 combination rows add up.
    fn bits(sketch: &Distinct) -> f64 {
        let estimate = sketch.estimate();
        if estimate < 1.0 {
            0.0
        } else {
            estimate.log2()
        }
    }

    pub fn name_bits(&self) -> f64 {
        Self::bits(&self.names)
    }

    pub fn uuid_bits(&self) -> f64 {
        Self::bits(&self.uuids)
    }

    pub fn mac_bits(&self) -> f64 {
        Self::bits(&self.macs)
    }

    /// Resident bytes across the three sketches.
    pub fn state_bytes(&self) -> usize {
        self.names.state_bytes() + self.uuids.state_bytes() + self.macs.state_bytes()
    }

    /// Run manifest for one crowd-scale estimation pass. The entropy bits
    /// are stamped via their exact IEEE-754 bit patterns (alongside the
    /// human-readable floats), so the byte-identity contract covers the
    /// estimates themselves, not a rounded rendering of them.
    pub fn manifest(&self, dataset: &Dataset, k: usize) -> iotlan_telemetry::Manifest {
        let mut manifest = iotlan_telemetry::Manifest::new("crowd_estimate");
        manifest.set("households", dataset.households.len());
        manifest.set("sketch_k", k);
        manifest.set("analyzed_devices", self.analyzed_devices);
        manifest.set("state_bytes", self.state_bytes());
        manifest.set("name_bits", self.name_bits());
        manifest.set("uuid_bits", self.uuid_bits());
        manifest.set("mac_bits", self.mac_bits());
        manifest.set("name_bits_ieee", self.name_bits().to_bits());
        manifest.set("uuid_bits_ieee", self.uuid_bits().to_bits());
        manifest.set("mac_bits_ieee", self.mac_bits().to_bits());
        manifest.attach_metrics();
        manifest.attach_host_info();
        manifest
    }
}

/// Stream every household's discovery payloads into per-type KMV sketches
/// of size `k`, in parallel over the pool, merging in household order.
pub fn estimate_identifier_space(dataset: &Dataset, k: usize, seed: u64) -> IdentifierSpaceEstimate {
    let shards = pool::par_map(&dataset.households, |_, household| {
        let _span = iotlan_telemetry::span!("crowd.household");
        iotlan_telemetry::counter!("crowd.households").incr();
        let mut shard = IdentifierSpaceEstimate {
            names: Distinct::new(k, seed ^ 0x6e61),
            uuids: Distinct::new(k, seed ^ 0x7575),
            macs: Distinct::new(k, seed ^ 0x6d61),
            analyzed_devices: 0,
        };
        for device in &household.devices {
            let Some(identifiers) = extract_device_identifiers(device) else {
                continue;
            };
            shard.analyzed_devices += 1;
            for value in &identifiers.names {
                shard.names.insert(value.as_bytes());
            }
            for value in &identifiers.uuids {
                shard.uuids.insert(value.as_bytes());
            }
            for value in &identifiers.macs {
                shard.macs.insert(value.as_bytes());
            }
        }
        shard
    });
    let mut merged = IdentifierSpaceEstimate {
        names: Distinct::new(k, seed ^ 0x6e61),
        uuids: Distinct::new(k, seed ^ 0x7575),
        macs: Distinct::new(k, seed ^ 0x6d61),
        analyzed_devices: 0,
    };
    for shard in shards {
        merged.names.merge(&shard.names);
        merged.uuids.merge(&shard.uuids);
        merged.macs.merge(&shard.macs);
        merged.analyzed_devices += shard.analyzed_devices;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotlan_inspector::dataset::{generate, GeneratorConfig};
    use std::collections::BTreeSet;

    fn small_dataset() -> Dataset {
        generate(&GeneratorConfig {
            seed: 0xc0ffee,
            households: 400,
        })
    }

    #[test]
    fn estimates_track_exact_distinct_counts() {
        let dataset = small_dataset();
        let mut exact_names: BTreeSet<String> = BTreeSet::new();
        let mut exact_uuids: BTreeSet<String> = BTreeSet::new();
        let mut exact_macs: BTreeSet<String> = BTreeSet::new();
        for household in &dataset.households {
            for device in &household.devices {
                if let Some(identifiers) = extract_device_identifiers(device) {
                    exact_names.extend(identifiers.names.iter().cloned());
                    exact_uuids.extend(identifiers.uuids.iter().cloned());
                    exact_macs.extend(identifiers.macs.iter().cloned());
                }
            }
        }
        let k = 256;
        let estimate = estimate_identifier_space(&dataset, k, 7);
        // 6 sigma of the documented RSE 1/sqrt(k-2); exact below k.
        let tolerance = 6.0 / ((k as f64) - 2.0).sqrt();
        for (sketch, exact) in [
            (&estimate.names, exact_names.len()),
            (&estimate.uuids, exact_uuids.len()),
            (&estimate.macs, exact_macs.len()),
        ] {
            let estimated = sketch.estimate();
            if exact < k {
                assert_eq!(estimated, exact as f64, "exact below k");
            } else {
                let relative = (estimated - exact as f64).abs() / exact as f64;
                assert!(
                    relative < tolerance,
                    "relative error {relative} vs tolerance {tolerance} (exact {exact})"
                );
            }
        }
        assert!(estimate.state_bytes() <= 3 * k * 8);
    }

    #[test]
    fn estimate_is_thread_count_invariant() {
        let dataset = small_dataset();
        let reference = pool::with_threads(1, || estimate_identifier_space(&dataset, 128, 3));
        for threads in [2usize, 4] {
            let result = pool::with_threads(threads, || estimate_identifier_space(&dataset, 128, 3));
            assert_eq!(result.names, reference.names);
            assert_eq!(result.uuids, reference.uuids);
            assert_eq!(result.macs, reference.macs);
            assert_eq!(result.analyzed_devices, reference.analyzed_devices);
            assert_eq!(
                result.name_bits().to_bits(),
                reference.name_bits().to_bits()
            );
        }
    }
}
