//! The Android permission model as it bears on local-network access (§2.1).
//!
//! * Since Android 13, reading the Wi-Fi SSID requires
//!   `NEARBY_WIFI_DEVICES`; on Android 9–12 it required a location
//!   permission. Both are **dangerous** (runtime-consent) permissions.
//! * mDNS/SSDP scanning via `NsdManager` or raw multicast sockets needs
//!   only `INTERNET` + `CHANGE_WIFI_MULTICAST_STATE`, **neither of which is
//!   dangerous** — the side channel the paper's PoC app demonstrates.

use core::fmt;

/// Android permissions relevant to local-network data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    Internet,
    ChangeWifiMulticastState,
    AccessWifiState,
    AccessCoarseLocation,
    AccessFineLocation,
    NearbyWifiDevices,
}

impl Permission {
    /// Whether Android classifies the permission as "dangerous" (requires
    /// explicit user consent at runtime).
    pub fn is_dangerous(self) -> bool {
        matches!(
            self,
            Permission::AccessCoarseLocation
                | Permission::AccessFineLocation
                | Permission::NearbyWifiDevices
        )
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// APIs / channels an app can use to reach local-network data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AndroidApi {
    /// `WifiInfo.getSSID()` — official, permission-gated.
    GetSsid,
    /// `WifiInfo.getBSSID()` — official, permission-gated (router MAC).
    GetBssid,
    /// `NsdManager` mDNS discovery — native support, NOT gated by any
    /// dangerous permission.
    NsdDiscoverMdns,
    /// Raw multicast socket SSDP discovery — NOT gated.
    SsdpSocket,
    /// Raw UDP NetBIOS name scan — NOT gated.
    NetBiosSocket,
    /// ARP table reads / libarp.so — NOT gated (raw packet TX needs root,
    /// which is why the paper can't attribute ARP to apps).
    ArpTable,
    /// The multicast lock needed before receiving multicast.
    MulticastLock,
}

impl AndroidApi {
    /// The permission the API *officially* requires on Android 13.
    pub fn required_permission(self) -> Option<Permission> {
        match self {
            AndroidApi::GetSsid | AndroidApi::GetBssid => Some(Permission::NearbyWifiDevices),
            AndroidApi::MulticastLock => Some(Permission::ChangeWifiMulticastState),
            AndroidApi::NsdDiscoverMdns
            | AndroidApi::SsdpSocket
            | AndroidApi::NetBiosSocket
            | AndroidApi::ArpTable => Some(Permission::Internet),
        }
    }

    /// True when the API delivers data equivalent to a dangerous-permission
    /// API without requiring one — the paper's side-channel definition.
    pub fn is_side_channel(self) -> bool {
        matches!(
            self,
            AndroidApi::NsdDiscoverMdns | AndroidApi::SsdpSocket | AndroidApi::NetBiosSocket
        )
    }
}

/// The outcome of an app attempting an API call under a permission set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Granted through the official path.
    Granted,
    /// Denied: the required dangerous permission is missing.
    Denied,
    /// Achieved the equivalent data via a non-dangerous side channel.
    SideChannel,
}

/// Evaluate an API attempt: the §2.1 PoC logic.
pub fn evaluate_access(api: AndroidApi, held: &[Permission]) -> AccessOutcome {
    match api.required_permission() {
        Some(required) if !held.contains(&required) => AccessOutcome::Denied,
        _ => {
            if api.is_side_channel() {
                AccessOutcome::SideChannel
            } else {
                AccessOutcome::Granted
            }
        }
    }
}

/// The non-dangerous permission set of the paper's PoC app — enough to
/// enumerate the LAN.
pub fn poc_permissions() -> Vec<Permission> {
    vec![Permission::Internet, Permission::ChangeWifiMulticastState]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangerous_classification() {
        assert!(!Permission::Internet.is_dangerous());
        assert!(!Permission::ChangeWifiMulticastState.is_dangerous());
        assert!(Permission::NearbyWifiDevices.is_dangerous());
        assert!(Permission::AccessFineLocation.is_dangerous());
    }

    #[test]
    fn poc_app_can_scan_without_dangerous_permissions() {
        // The §2.1 PoC: INTERNET + CHANGE_WIFI_MULTICAST_STATE suffice for
        // mDNS and SSDP discovery…
        let held = poc_permissions();
        assert!(held.iter().all(|p| !p.is_dangerous()));
        assert_eq!(
            evaluate_access(AndroidApi::NsdDiscoverMdns, &held),
            AccessOutcome::SideChannel
        );
        assert_eq!(
            evaluate_access(AndroidApi::SsdpSocket, &held),
            AccessOutcome::SideChannel
        );
        assert_eq!(
            evaluate_access(AndroidApi::NetBiosSocket, &held),
            AccessOutcome::SideChannel
        );
        // …while the official SSID/BSSID APIs stay closed.
        assert_eq!(
            evaluate_access(AndroidApi::GetSsid, &held),
            AccessOutcome::Denied
        );
        assert_eq!(
            evaluate_access(AndroidApi::GetBssid, &held),
            AccessOutcome::Denied
        );
    }

    #[test]
    fn official_path_with_consent() {
        let held = vec![Permission::Internet, Permission::NearbyWifiDevices];
        assert_eq!(
            evaluate_access(AndroidApi::GetSsid, &held),
            AccessOutcome::Granted
        );
    }

    #[test]
    fn multicast_lock_not_dangerous_but_required() {
        let held = vec![Permission::Internet];
        assert_eq!(
            evaluate_access(AndroidApi::MulticastLock, &held),
            AccessOutcome::Denied
        );
        let held = poc_permissions();
        assert_eq!(
            evaluate_access(AndroidApi::MulticastLock, &held),
            AccessOutcome::Granted
        );
    }
}
