//! # iotlan-apps
//!
//! The mobile-app side of the paper: a simulated Android runtime with the
//! real permission-model semantics (§2.1), a 2,335-app population (987 IoT
//! companion + 1,348 regular apps, §3.2), models of the named data-harvesting
//! SDKs (§6.2), a Monkey-style exerciser, and AppCensus-style runtime
//! instrumentation that logs permission-protected API access and decrypted
//! exfiltration flows with taint tracking from LAN-harvested data to cloud
//! endpoints (§6.1).
//!
//! The central finding this crate reproduces: apps can scan the home
//! network with mDNS/SSDP (via `NsdManager`-style side channels) holding
//! only `INTERNET` and `CHANGE_WIFI_MULTICAST_STATE` — neither of which is
//! a "dangerous" permission — and exfiltrate the identifiers they harvest,
//! bypassing the location/nearby-devices permissions that official APIs
//! require.

pub mod android;
pub mod app;
pub mod appcensus;
pub mod phone;
pub mod sdk;

pub use android::{AndroidApi, Permission};
pub use app::{build_population, named_apps, AppBehavior, AppCategory, AppConfig};
pub use appcensus::{AppCensusReport, DataType, ExfilRecord, TestRun};
pub use phone::Phone;
pub use sdk::SdkKind;
