//! App configurations and the 2,335-app population of §3.2, with behaviour
//! rates calibrated to §4.3/§6.1: mDNS 6.0% of apps, SSDP/UPnP 4.0%,
//! NetBIOS 0.5% (10 apps, only 2 of them IoT), TLS-to-device 25%, and 9%
//! of apps using at least one discovery protocol.

use crate::android::Permission;
use crate::sdk::SdkKind;

/// IoT companion app vs regular (social/game/news) app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppCategory {
    Iot,
    Regular,
}

/// A local-network behaviour an app exhibits during a test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppBehavior {
    /// mDNS service discovery for the given service types.
    MdnsScan(Vec<String>),
    /// SSDP M-SEARCH for the given targets.
    SsdpScan(Vec<String>),
    /// NetBIOS NBSTAT sweep (the innosdk pattern).
    NetBiosScan,
    /// TLS connection to a paired device's local API port.
    TlsToDevice { dst_port: u16 },
    /// TPLINK-SHP discovery broadcast (Kasa and platform apps).
    TplinkDiscovery,
    /// TuyaLP discovery broadcast (Tuya Smart app).
    TuyaDiscovery,
    /// Read the router SSID/BSSID via official APIs and upload.
    CollectRouterInfo,
    /// Upload the Android Advertising ID alongside harvested data
    /// (the Blueair pattern: MAC + AAID + geolocation).
    AttachAdvertisingId,
    /// Receive device MACs in *downlink* traffic from the cloud (the §6.1
    /// observation on 13 companion apps).
    DownlinkMacReceipt,
}

/// One app.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Package name, e.g. `com.tpl.kasa`.
    pub package: String,
    pub category: AppCategory,
    pub permissions: Vec<Permission>,
    pub behaviors: Vec<AppBehavior>,
    pub sdks: Vec<SdkKind>,
}

impl AppConfig {
    /// Does the app use any local discovery protocol (the 9% statistic)?
    pub fn scans_network(&self) -> bool {
        self.behaviors.iter().any(|b| {
            matches!(
                b,
                AppBehavior::MdnsScan(_)
                    | AppBehavior::SsdpScan(_)
                    | AppBehavior::NetBiosScan
                    | AppBehavior::TplinkDiscovery
                    | AppBehavior::TuyaDiscovery
            )
        })
    }

    pub fn uses_mdns(&self) -> bool {
        self.behaviors
            .iter()
            .any(|b| matches!(b, AppBehavior::MdnsScan(_)))
    }

    pub fn uses_ssdp(&self) -> bool {
        self.behaviors
            .iter()
            .any(|b| matches!(b, AppBehavior::SsdpScan(_)))
    }

    pub fn uses_netbios(&self) -> bool {
        self.behaviors.contains(&AppBehavior::NetBiosScan)
    }

    pub fn uses_tls(&self) -> bool {
        self.behaviors
            .iter()
            .any(|b| matches!(b, AppBehavior::TlsToDevice { .. }))
    }
}

fn base_permissions() -> Vec<Permission> {
    vec![
        Permission::Internet,
        Permission::ChangeWifiMulticastState,
        Permission::AccessWifiState,
    ]
}

/// The named case-study apps, modelled explicitly.
pub fn named_apps() -> Vec<AppConfig> {
    let cast = || "_googlecast._tcp.local".to_string();
    let airplay = || "_airplay._tcp.local".to_string();
    vec![
        AppConfig {
            package: "com.amazon.dee.app".into(), // Alexa companion
            category: AppCategory::Iot,
            permissions: base_permissions(),
            behaviors: vec![
                AppBehavior::MdnsScan(vec!["_amzn-wplay._tcp.local".into()]),
                AppBehavior::SsdpScan(vec!["ssdp:all".into()]),
                AppBehavior::TplinkDiscovery,
                AppBehavior::TlsToDevice { dst_port: 55443 },
                AppBehavior::DownlinkMacReceipt,
            ],
            sdks: vec![SdkKind::Amplitude],
        },
        AppConfig {
            package: "com.google.android.apps.chromecast.app".into(), // Google Home
            category: AppCategory::Iot,
            permissions: base_permissions(),
            behaviors: vec![
                AppBehavior::MdnsScan(vec![cast()]),
                AppBehavior::SsdpScan(vec!["urn:dial-multiscreen-org:service:dial:1".into()]),
                AppBehavior::TlsToDevice { dst_port: 8009 },
                AppBehavior::CollectRouterInfo,
                AppBehavior::DownlinkMacReceipt,
            ],
            sdks: vec![],
        },
        AppConfig {
            package: "com.tplink.kasa_android".into(),
            category: AppCategory::Iot,
            permissions: base_permissions(),
            behaviors: vec![
                AppBehavior::TplinkDiscovery,
                AppBehavior::CollectRouterInfo,
                AppBehavior::AttachAdvertisingId,
            ],
            sdks: vec![],
        },
        AppConfig {
            package: "com.tuya.smart".into(),
            category: AppCategory::Iot,
            permissions: base_permissions(),
            behaviors: vec![
                AppBehavior::TuyaDiscovery,
                AppBehavior::MdnsScan(vec!["_matter._tcp.local".into()]),
                AppBehavior::DownlinkMacReceipt,
            ],
            sdks: vec![SdkKind::TuyaSdk],
        },
        AppConfig {
            package: "com.blueair.android".into(),
            category: AppCategory::Iot,
            permissions: {
                let mut p = base_permissions();
                p.push(Permission::AccessCoarseLocation);
                p
            },
            behaviors: vec![
                AppBehavior::MdnsScan(vec!["_services._dns-sd._udp.local".into()]),
                AppBehavior::AttachAdvertisingId,
            ],
            sdks: vec![],
        },
        AppConfig {
            package: "com.cnn.mobile.android.phone".into(), // CNN 6.18.3
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::SsdpScan(vec![
                "urn:dial-multiscreen-org:service:dial:1".into(),
            ])],
            sdks: vec![SdkKind::AppDynamics],
        },
        AppConfig {
            package: "org.speedspot.speedspotspeedtest".into(), // Simple Speedcheck
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::SsdpScan(vec![
                "urn:schemas-upnp-org:device:InternetGatewayDevice:1".into(),
            ])],
            sdks: vec![SdkKind::UmlautInsightCore],
        },
        AppConfig {
            package: "com.luckyapp.winner".into(), // Lucky Time
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::NetBiosScan],
            sdks: vec![SdkKind::InnoSdk],
        },
        AppConfig {
            package: "com.pzolee.networkscanner".into(), // Device Finder
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::NetBiosScan, AppBehavior::MdnsScan(vec![cast()])],
            sdks: vec![],
        },
        AppConfig {
            package: "com.myprog.netscan".into(), // Network Scanner
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::NetBiosScan],
            sdks: vec![],
        },
        AppConfig {
            package: "com.spotify.music".into(),
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::MdnsScan(vec![
                "_spotify-connect._tcp.local".into(),
            ])],
            sdks: vec![],
        },
        AppConfig {
            package: "tv.apple.remote".into(),
            category: AppCategory::Regular,
            permissions: base_permissions(),
            behaviors: vec![AppBehavior::MdnsScan(vec![airplay()])],
            sdks: vec![],
        },
    ]
}

/// Build the full 2,335-app population: the named apps plus synthesized
/// apps whose behaviour mixture matches the paper's aggregates. Fully
/// deterministic (no RNG: counts are exact).
pub fn build_population() -> Vec<AppConfig> {
    let mut apps = named_apps();

    // Behaviour targets over N = 2335:
    //   mDNS    : 6.0%  -> 140 apps
    //   SSDP    : 4.0%  ->  93 apps
    //   NetBIOS : 0.5%  ->  10 apps (2 IoT, 8 regular)
    //   TLS     : 25%   -> 584 apps
    //   scan any: ~9%   -> achieved via mDNS∩SSDP overlap
    //   router-info upload: SSID 36, router MAC 28, Wi-Fi MAC 15 (§6.1)
    const TOTAL: usize = 2335;
    const IOT: usize = 987;
    let named_count = apps.len();

    let mut mdns_left = 140usize.saturating_sub(apps.iter().filter(|a| a.uses_mdns()).count());
    let mut ssdp_left = 93usize.saturating_sub(apps.iter().filter(|a| a.uses_ssdp()).count());
    let mut both_left = 33usize; // overlap so that "any scan" lands near 9%
    let mut netbios_left = 10usize.saturating_sub(apps.iter().filter(|a| a.uses_netbios()).count());
    let mut tls_left = 584usize.saturating_sub(apps.iter().filter(|a| a.uses_tls()).count());
    let mut router_info_left = 36usize
        .saturating_sub(apps.iter().filter(|a| a.behaviors.contains(&AppBehavior::CollectRouterInfo)).count());
    let mut downlink_left = 13usize
        .saturating_sub(apps.iter().filter(|a| a.behaviors.contains(&AppBehavior::DownlinkMacReceipt)).count());

    for index in named_count..TOTAL {
        let is_iot = index < IOT + named_count / 2; // keep ~987 IoT total
        let category = if is_iot {
            AppCategory::Iot
        } else {
            AppCategory::Regular
        };
        let mut behaviors = Vec::new();
        let mut sdks = Vec::new();

        if both_left > 0 {
            behaviors.push(AppBehavior::MdnsScan(vec!["_services._dns-sd._udp.local".into()]));
            behaviors.push(AppBehavior::SsdpScan(vec!["ssdp:all".into()]));
            if both_left >= 31 {
                // Three more IoT apps relaying harvested MACs to analytics
                // (with the named apps: §6.1's six MAC-relaying IoT apps).
                sdks.push(SdkKind::Amplitude);
            }
            both_left -= 1;
            mdns_left = mdns_left.saturating_sub(1);
            ssdp_left = ssdp_left.saturating_sub(1);
        } else if mdns_left > 0 {
            behaviors.push(AppBehavior::MdnsScan(vec![if is_iot {
                "_hap._tcp.local".into()
            } else {
                "_googlecast._tcp.local".into()
            }]));
            mdns_left -= 1;
        } else if ssdp_left > 0 {
            behaviors.push(AppBehavior::SsdpScan(vec!["upnp:rootdevice".into()]));
            ssdp_left -= 1;
        } else if netbios_left > 0 && !is_iot {
            behaviors.push(AppBehavior::NetBiosScan);
            netbios_left -= 1;
            if netbios_left >= 7 {
                // Three of the NetBIOS apps also use ARP natively; the
                // innosdk carrier pattern.
                sdks.push(SdkKind::InnoSdk);
            }
        }
        if netbios_left > 0 && is_iot && index % 401 == 0 {
            // The 2 IoT-category NetBIOS apps.
            behaviors.push(AppBehavior::NetBiosScan);
            netbios_left -= 1;
        }
        if tls_left > 0 && index % 4 == 0 {
            behaviors.push(AppBehavior::TlsToDevice {
                dst_port: if is_iot { 8009 } else { 443 },
            });
            tls_left -= 1;
        }
        if router_info_left > 0 && index % 71 == 0 {
            behaviors.push(AppBehavior::CollectRouterInfo);
            router_info_left -= 1;
            if index % 142 == 0 {
                sdks.push(SdkKind::MyTracker);
            }
        }
        if downlink_left > 0 && is_iot && index % 83 == 0 {
            behaviors.push(AppBehavior::DownlinkMacReceipt);
            downlink_left -= 1;
        }

        apps.push(AppConfig {
            package: format!(
                "{}.app{index:04}",
                if is_iot { "iot.companion" } else { "com.regular" }
            ),
            category,
            permissions: base_permissions(),
            behaviors,
            sdks,
        });
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_size_and_split() {
        let apps = build_population();
        assert_eq!(apps.len(), 2335);
        let iot = apps.iter().filter(|a| a.category == AppCategory::Iot).count();
        // 987 IoT apps, give or take the named handful.
        assert!((980..=995).contains(&iot), "iot apps {iot}");
    }

    #[test]
    fn behaviour_rates_match_section43() {
        let apps = build_population();
        let n = apps.len() as f64;
        let mdns = apps.iter().filter(|a| a.uses_mdns()).count() as f64 / n;
        assert!((0.055..=0.065).contains(&mdns), "mdns {mdns}");
        let ssdp = apps.iter().filter(|a| a.uses_ssdp()).count() as f64 / n;
        assert!((0.035..=0.045).contains(&ssdp), "ssdp {ssdp}");
        let netbios = apps.iter().filter(|a| a.uses_netbios()).count();
        assert_eq!(netbios, 10, "netbios {netbios}");
        let tls = apps.iter().filter(|a| a.uses_tls()).count() as f64 / n;
        assert!((0.23..=0.27).contains(&tls), "tls {tls}");
        let scanning = apps.iter().filter(|a| a.scans_network()).count() as f64 / n;
        assert!((0.07..=0.11).contains(&scanning), "scanning {scanning}");
    }

    #[test]
    fn netbios_split_two_iot_eight_regular() {
        let apps = build_population();
        let iot_netbios = apps
            .iter()
            .filter(|a| a.uses_netbios() && a.category == AppCategory::Iot)
            .count();
        assert_eq!(iot_netbios, 2, "paper: only 2 NetBIOS apps are IoT apps");
    }

    #[test]
    fn named_apps_present() {
        let apps = build_population();
        for package in [
            "com.amazon.dee.app",
            "com.cnn.mobile.android.phone",
            "com.luckyapp.winner",
            "org.speedspot.speedspotspeedtest",
        ] {
            assert!(apps.iter().any(|a| a.package == package), "{package}");
        }
        let cnn = apps
            .iter()
            .find(|a| a.package == "com.cnn.mobile.android.phone")
            .unwrap();
        assert!(cnn.sdks.contains(&SdkKind::AppDynamics));
    }

    #[test]
    fn downlink_count() {
        let apps = build_population();
        let downlink = apps
            .iter()
            .filter(|a| a.behaviors.contains(&AppBehavior::DownlinkMacReceipt))
            .count();
        assert_eq!(downlink, 13, "§6.1: 13 companion apps receive MACs downlink");
    }

    #[test]
    fn deterministic() {
        let a = build_population();
        let b = build_population();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.package, y.package);
            assert_eq!(x.behaviors, y.behaviors);
        }
    }
}
