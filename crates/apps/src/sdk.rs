//! Models of the named third-party SDKs of §6.2, each with its documented
//! collection behaviour and cloud endpoint.

use core::fmt;

/// The SDKs the paper names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SdkKind {
    /// "innosdk": NetBIOS NBSTAT sweep of 192.168.0.0/24, ARP via
    /// `libarp.so`, algorithmically-generated payloads; endpoint
    /// gw.innotechworld.com. Carried by "Lucky Time - Win Rewards".
    InnoSdk,
    /// Cisco AppDynamics: wraps network callbacks, harvests UPnP device
    /// descriptors, beacons to events.claspws.tv with base64 SSID, Android
    /// ID, IDFA and the list of screen devices. Carried by the CNN app.
    AppDynamics,
    /// Umlaut insightCore: SSDP discovery targeting the UPnP IGD service;
    /// uploads connected-device lists and geolocation. Carried by Simple
    /// Speedcheck.
    UmlautInsightCore,
    /// MyTracker (my.com): harvests nearby Wi-Fi MACs/BSSIDs without the
    /// required permissions.
    MyTracker,
    /// Amplitude analytics: receives device MACs relayed by IoT apps.
    Amplitude,
    /// Tuya's own SDK: relays device MACs and IDs through Tuya cloud.
    TuyaSdk,
}

impl SdkKind {
    /// The collection endpoint observed in decrypted traffic.
    pub fn endpoint(self) -> &'static str {
        match self {
            SdkKind::InnoSdk => "https://gw.innotechworld.com/v1/collect",
            SdkKind::AppDynamics => "https://events.claspws.tv/v1/event",
            SdkKind::UmlautInsightCore => "https://tacs.c0nnectthed0ts.com/policy1/upload",
            SdkKind::MyTracker => "https://tracker.my.com/v2/batch",
            SdkKind::Amplitude => "https://api.amplitude.com/2/httpapi",
            SdkKind::TuyaSdk => "https://a1.tuyaus.com/api.json",
        }
    }

    /// Does this SDK actively scan the LAN itself (vs passively receiving
    /// data from the host app)?
    pub fn scans_lan(self) -> bool {
        matches!(
            self,
            SdkKind::InnoSdk | SdkKind::AppDynamics | SdkKind::UmlautInsightCore | SdkKind::MyTracker
        )
    }

    /// Marketing name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            SdkKind::InnoSdk => "innosdk",
            SdkKind::AppDynamics => "AppDynamics",
            SdkKind::UmlautInsightCore => "Umlaut insightCore",
            SdkKind::MyTracker => "MyTracker",
            SdkKind::Amplitude => "Amplitude",
            SdkKind::TuyaSdk => "Tuya SDK",
        }
    }
}

impl fmt::Display for SdkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The innosdk scan payload is generated algorithmically rather than stored
/// as a constant, "perhaps to avoid being detected as obvious malware"
/// (§6.2). We reproduce the generation: the NBSTAT wildcard query bytes are
/// derived at call time from the encoding rules, never embedded.
pub fn innosdk_generate_probe(transaction_id: u16) -> Vec<u8> {
    // Generated, not constant: build the first-level-encoded wildcard name
    // from the nibble-to-letter rule each time.
    let mut name = String::with_capacity(32);
    let raw = {
        let mut raw = [0u8; 16];
        raw[0] = b'*';
        raw
    };
    for byte in raw {
        name.push((b'A' + (byte >> 4)) as char);
        name.push((b'A' + (byte & 0x0f)) as char);
    }
    let mut out = Vec::with_capacity(50);
    out.extend_from_slice(&transaction_id.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // flags
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
    out.push(32);
    out.extend_from_slice(name.as_bytes());
    out.push(0);
    out.extend_from_slice(&0x0021u16.to_be_bytes()); // NBSTAT
    out.extend_from_slice(&1u16.to_be_bytes()); // IN
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_paper() {
        assert!(SdkKind::InnoSdk.endpoint().contains("gw.innotechworld.com"));
        assert!(SdkKind::AppDynamics.endpoint().contains("events.claspws.tv/v1/event"));
        assert!(SdkKind::MyTracker.endpoint().contains("tracker.my.com"));
    }

    #[test]
    fn generated_probe_parses_as_nbstat_wildcard() {
        let bytes = innosdk_generate_probe(0x0001);
        let query = iotlan_wire::netbios::Query::parse(&bytes).unwrap();
        assert_eq!(query.name, "*");
        assert_eq!(query.qtype, iotlan_wire::netbios::TYPE_NBSTAT);
        // And matches the canonical encoder byte-for-byte.
        let reference = iotlan_wire::netbios::Query::nbstat_wildcard(0x0001).to_bytes();
        assert_eq!(bytes, reference);
    }

    #[test]
    fn lan_scanning_sdks() {
        assert!(SdkKind::InnoSdk.scans_lan());
        assert!(SdkKind::UmlautInsightCore.scans_lan());
        assert!(!SdkKind::Amplitude.scans_lan());
    }
}
