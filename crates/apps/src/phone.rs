//! The instrumented test phone: a LAN node that runs apps one at a time
//! (Monkey-style, §3.2), generates each app's local traffic, harvests the
//! responses, and produces [`TestRun`] records with taint-tracked
//! exfiltration.

use crate::android::{evaluate_access, AndroidApi};
use crate::app::{AppBehavior, AppConfig};
use crate::appcensus::{
    extract_macs, extract_possessive_names, extract_uuids, DataType, Direction, ExfilRecord,
    Harvested, TestRun,
};
use crate::sdk::{innosdk_generate_probe, SdkKind};
use iotlan_netsim::stack::{self, Content, Endpoint};
use iotlan_netsim::{Context, Node, SimDuration};
use iotlan_wire::ethernet::EthernetAddress;
use iotlan_wire::tls::{Handshake, Version as TlsVersion};
use iotlan_wire::{arp, dns, icmpv4, ssdp, tcp, tplink, tuya};
use std::any::Any;
use std::net::Ipv4Addr;

/// Per-app test window. The paper exercises each app ~5 wall-clock
/// minutes; the network-relevant behaviour compresses into seconds.
pub const APP_WINDOW: SimDuration = SimDuration(2_000_000);

/// The instrumented phone node.
pub struct Phone {
    endpoint: Endpoint,
    router_ssid: String,
    router_bssid: EthernetAddress,
    /// TLS/TPLINK test targets: a paired device per protocol.
    tls_target: Option<(Ipv4Addr, EthernetAddress)>,
    apps: Vec<AppConfig>,
    window: SimDuration,
    current: Option<usize>,
    current_protocols: Vec<&'static str>,
    current_harvest: Vec<Harvested>,
    /// Completed runs.
    pub runs: Vec<TestRun>,
}

impl Phone {
    pub fn new(
        mac: EthernetAddress,
        ip: Ipv4Addr,
        router_ssid: &str,
        router_bssid: EthernetAddress,
        apps: Vec<AppConfig>,
    ) -> Phone {
        Phone {
            endpoint: Endpoint { mac, ip },
            router_ssid: router_ssid.to_string(),
            router_bssid,
            tls_target: None,
            apps,
            window: APP_WINDOW,
            current: None,
            current_protocols: Vec::new(),
            current_harvest: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Pair the phone with a device for TLS / local-API tests.
    pub fn pair_tls_target(&mut self, ip: Ipv4Addr, mac: EthernetAddress) {
        self.tls_target = Some((ip, mac));
    }

    /// Override the per-app window (e.g. to passively collect slow
    /// periodic broadcasts like TuyaLP's 10-second cadence).
    pub fn set_window(&mut self, window: SimDuration) {
        self.window = window;
    }

    /// Total sim time needed to exercise `n` apps.
    pub fn schedule_length(n: usize) -> SimDuration {
        SimDuration(APP_WINDOW.0 * (n as u64 + 2))
    }

    fn start_app(&mut self, ctx: &mut Context, index: usize) {
        self.current = Some(index);
        self.current_protocols.clear();
        self.current_harvest.clear();
        let app = self.apps[index].clone();

        // OS-level background traffic present in most tests (§4.3): a
        // gateway ARP and an ICMP ping.
        let request = arp::Repr::request(
            self.endpoint.mac,
            self.endpoint.ip,
            iotlan_netsim::router::GATEWAY_IP,
        );
        ctx.send_frame(stack::arp_frame(&request));
        self.current_protocols.push("ARP");
        let ping = icmpv4::Repr {
            message: icmpv4::Message::EchoRequest {
                ident: index as u16,
                seq: 1,
            },
            payload_len: 0,
        };
        ctx.send_frame(stack::icmpv4_frame(
            self.endpoint,
            Endpoint {
                mac: iotlan_netsim::router::GATEWAY_MAC,
                ip: iotlan_netsim::router::GATEWAY_IP,
            },
            &ping,
            &[],
        ));
        self.current_protocols.push("ICMP");

        for behavior in &app.behaviors {
            match behavior {
                AppBehavior::MdnsScan(targets) => {
                    let questions: Vec<(&str, dns::RecordType)> = targets
                        .iter()
                        .map(|t| (t.as_str(), dns::RecordType::Ptr))
                        .collect();
                    let query = dns::Message::mdns_query(&questions);
                    ctx.send_frame(stack::udp_multicast(
                        self.endpoint,
                        dns::MDNS_GROUP_V4,
                        dns::MDNS_PORT,
                        dns::MDNS_PORT,
                        &query.to_bytes(),
                    ));
                    self.current_protocols.push("mDNS");
                }
                AppBehavior::SsdpScan(targets) => {
                    for target in targets {
                        let msearch = ssdp::Message::msearch(target, 1);
                        ctx.send_frame(stack::udp_multicast(
                            self.endpoint,
                            ssdp::SSDP_GROUP_V4,
                            50000 + index as u16 % 10000,
                            ssdp::SSDP_PORT,
                            &msearch.to_bytes(),
                        ));
                    }
                    self.current_protocols.push("SSDP");
                }
                AppBehavior::NetBiosScan => {
                    // The innosdk sweep: a datagram to every IP in the /24
                    // "regardless of whether there was a machine assigned",
                    // preceded by libarp.so ARP resolution (§6.2: "three of
                    // which utilize ARP … to collect MAC addresses and
                    // subsequently send targeted NetBIOS requests").
                    // We model a compressed sweep of 25 addresses.
                    for host in (10u8..=250).step_by(10) {
                        let target_ip = Ipv4Addr::new(192, 168, 10, host);
                        let request =
                            arp::Repr::request(self.endpoint.mac, self.endpoint.ip, target_ip);
                        ctx.send_frame(stack::arp_frame(&request));
                        let probe = innosdk_generate_probe(host as u16);
                        let dst = Endpoint {
                            mac: EthernetAddress::BROADCAST,
                            ip: target_ip,
                        };
                        ctx.send_frame(stack::udp_unicast(
                            self.endpoint,
                            dst,
                            137,
                            137,
                            &probe,
                        ));
                    }
                    self.current_protocols.push("NETBIOS");
                }
                AppBehavior::TlsToDevice { dst_port } => {
                    if let Some((ip, mac)) = self.tls_target {
                        let hello = Handshake::ClientHello {
                            version: TlsVersion::Tls12,
                            supported_versions: vec![TlsVersion::Tls12, TlsVersion::Tls13],
                            server_name: None,
                            cipher_suites: vec![0xc02f, 0x1301],
                        }
                        .into_record(TlsVersion::Tls12)
                        .to_bytes();
                        // Simplified session: SYN then first flight.
                        let sport = 42000 + (index as u16 % 20000);
                        let syn = tcp::Repr::syn(sport, *dst_port, 0x0a00_0000);
                        let target = Endpoint { mac, ip };
                        ctx.send_frame(stack::tcp_segment(self.endpoint, target, &syn, &[]));
                        let data = tcp::Repr::data(sport, *dst_port, 0x0a00_0001, 0x2001, hello.len());
                        ctx.send_frame_delayed(
                            SimDuration::from_millis(30),
                            stack::tcp_segment(self.endpoint, target, &data, &hello),
                        );
                        self.current_protocols.push("TLS");
                    }
                }
                AppBehavior::TplinkDiscovery => {
                    let query = tplink::Message::get_sysinfo();
                    ctx.send_frame(stack::udp_broadcast(
                        self.endpoint,
                        43000 + index as u16 % 10000,
                        tplink::SHP_PORT,
                        &query.to_udp_bytes(),
                    ));
                    self.current_protocols.push("TPLINK_SHP");
                }
                AppBehavior::TuyaDiscovery => {
                    // The companion app announces itself; Tuya devices only
                    // respond to it (§5.1), and their periodic broadcasts
                    // are harvested passively during the window.
                    self.current_protocols.push("TuyaLP");
                }
                AppBehavior::CollectRouterInfo
                | AppBehavior::AttachAdvertisingId
                | AppBehavior::DownlinkMacReceipt => {}
            }
        }
    }

    fn finalize_app(&mut self, index: usize) {
        let app = self.apps[index].clone();
        let mut api_accesses = Vec::new();
        // Log the side-channel usage the behaviours imply.
        if app.uses_mdns() {
            api_accesses.push((
                AndroidApi::NsdDiscoverMdns,
                evaluate_access(AndroidApi::NsdDiscoverMdns, &app.permissions),
            ));
        }
        if app.uses_ssdp() {
            api_accesses.push((
                AndroidApi::SsdpSocket,
                evaluate_access(AndroidApi::SsdpSocket, &app.permissions),
            ));
        }
        if app.uses_netbios() {
            api_accesses.push((
                AndroidApi::NetBiosSocket,
                evaluate_access(AndroidApi::NetBiosSocket, &app.permissions),
            ));
        }
        if app.behaviors.contains(&AppBehavior::CollectRouterInfo) {
            let outcome = evaluate_access(AndroidApi::GetBssid, &app.permissions);
            api_accesses.push((AndroidApi::GetBssid, outcome));
            if outcome == crate::android::AccessOutcome::Denied {
                // §2.1/§6.1: the WSJ-style apps got the router identifiers
                // anyway, via raw sockets — the ARP table exposes the
                // gateway MAC to any app with INTERNET.
                api_accesses.push((
                    AndroidApi::ArpTable,
                    crate::android::AccessOutcome::SideChannel,
                ));
            }
        }

        let exfil = self.build_exfil(&app);
        self.runs.push(TestRun {
            package: app.package.clone(),
            category: app.category,
            api_accesses,
            protocols_used: std::mem::take(&mut self.current_protocols),
            harvested: std::mem::take(&mut self.current_harvest),
            exfil,
        });
        self.current = None;
    }

    /// Build the exfiltration records: structural taint — values are drawn
    /// from what this run actually harvested (or the OS APIs provide).
    fn build_exfil(&self, app: &AppConfig) -> Vec<ExfilRecord> {
        let mut out = Vec::new();
        let harvested = &self.current_harvest;
        let values_of = |data: DataType| -> Vec<(DataType, String)> {
            harvested
                .iter()
                .filter(|h| h.data == data)
                .map(|h| (h.data, h.value.clone()))
                .collect()
        };
        let device_macs = values_of(DataType::DeviceMac);
        let uuids = values_of(DataType::DeviceUuid);
        let names = values_of(DataType::DisplayName);
        let geoloc = values_of(DataType::Geolocation);
        let tplink_ids: Vec<(DataType, String)> = harvested
            .iter()
            .filter(|h| matches!(h.data, DataType::TplinkDeviceId | DataType::TplinkOemId))
            .map(|h| (h.data, h.value.clone()))
            .collect();
        let netbios = values_of(DataType::NetbiosName);
        let descriptors = values_of(DataType::UpnpDescriptor);

        // First-party relays: IoT apps with tracking SDKs or AAID
        // attachment relay harvested device MACs (§6.1's six apps).
        let relays_macs = app.sdks.contains(&SdkKind::Amplitude)
            || app.sdks.contains(&SdkKind::TuyaSdk)
            || app.behaviors.contains(&AppBehavior::AttachAdvertisingId);
        if relays_macs && !device_macs.is_empty() {
            let mut values = device_macs.clone();
            if app.behaviors.contains(&AppBehavior::AttachAdvertisingId) {
                values.push((
                    DataType::AdvertisingId,
                    "38400000-8cf0-11bd-b23e-10b96e40000d".into(),
                ));
                values.push((DataType::Geolocation, "42.34,-71.09 (coarse)".into()));
            }
            let (endpoint, sdk) = if let Some(sdk) = app
                .sdks
                .iter()
                .find(|s| matches!(s, SdkKind::Amplitude | SdkKind::TuyaSdk))
            {
                (sdk.endpoint().to_string(), Some(*sdk))
            } else {
                (format!("https://cloud.{}.example/devices", app.package), None)
            };
            out.push(ExfilRecord {
                endpoint,
                sdk,
                direction: Direction::Uplink,
                values,
            });
        }

        // TP-Link identifiers + geolocation (Kasa, Alexa; §6.1).
        if !tplink_ids.is_empty() {
            let mut values = tplink_ids;
            values.extend(geoloc.clone());
            out.push(ExfilRecord {
                endpoint: format!("https://cloud.{}.example/iot", app.package),
                sdk: None,
                direction: Direction::Uplink,
                values,
            });
        }

        // Router info through official (permission-gated) APIs — §6.1: 36
        // apps upload the SSID, 28 the router MAC, 15 the Wi-Fi MAC.
        if app.behaviors.contains(&AppBehavior::CollectRouterInfo) {
            let mut values = vec![
                (DataType::RouterSsid, self.router_ssid.clone()),
                (DataType::RouterMac, self.router_bssid.to_string()),
            ];
            let sdk = if app.sdks.contains(&SdkKind::MyTracker) {
                values.push((DataType::WifiMac, self.endpoint.mac.to_string()));
                Some(SdkKind::MyTracker)
            } else {
                None
            };
            out.push(ExfilRecord {
                endpoint: sdk
                    .map(|s| s.endpoint().to_string())
                    .unwrap_or_else(|| format!("https://cloud.{}.example/net", app.package)),
                sdk,
                direction: Direction::Uplink,
                values,
            });
        }

        // SDK-specific collection.
        for sdk in &app.sdks {
            match sdk {
                SdkKind::InnoSdk if !netbios.is_empty() || !device_macs.is_empty() => {
                    let mut values = netbios.clone();
                    values.extend(device_macs.clone());
                    out.push(ExfilRecord {
                        endpoint: sdk.endpoint().to_string(),
                        sdk: Some(*sdk),
                        direction: Direction::Uplink,
                        values,
                    });
                }
                SdkKind::AppDynamics if !descriptors.is_empty() || !uuids.is_empty() => {
                    let mut values = descriptors.clone();
                    values.extend(uuids.clone());
                    values.extend(names.clone());
                    // The side-channel extras: base64 SSID, Android ID, IDFA.
                    values.push((DataType::RouterSsid, base64ish(&self.router_ssid)));
                    values.push((DataType::AndroidId, "a1b2c3d4e5f60718".into()));
                    values.push((
                        DataType::AdvertisingId,
                        "c0ffee00-dead-beef-cafe-012345678901".into(),
                    ));
                    out.push(ExfilRecord {
                        endpoint: sdk.endpoint().to_string(),
                        sdk: Some(*sdk),
                        direction: Direction::Uplink,
                        values,
                    });
                }
                SdkKind::UmlautInsightCore if !uuids.is_empty() || !descriptors.is_empty() => {
                    let mut values = uuids.clone();
                    values.extend(descriptors.clone());
                    values.push((DataType::Geolocation, "42.34,-71.09".into()));
                    out.push(ExfilRecord {
                        endpoint: sdk.endpoint().to_string(),
                        sdk: Some(*sdk),
                        direction: Direction::Uplink,
                        values,
                    });
                }
                _ => {}
            }
        }

        // Downlink MAC dissemination (§6.1: 13 companion apps).
        if app.behaviors.contains(&AppBehavior::DownlinkMacReceipt) {
            out.push(ExfilRecord {
                endpoint: "https://aws-iot.cloud.example/shadow".into(),
                sdk: None,
                direction: Direction::Downlink,
                values: vec![(DataType::DeviceMac, "(cloud-provided sibling MACs)".into())],
            });
        }
        out
    }

    fn harvest_text(&mut self, source_protocol: &'static str, text: &str) {
        for mac in extract_macs(text) {
            self.current_harvest.push(Harvested {
                data: DataType::DeviceMac,
                value: mac,
                source_protocol,
            });
        }
        for uuid in extract_uuids(text) {
            self.current_harvest.push(Harvested {
                data: DataType::DeviceUuid,
                value: uuid,
                source_protocol,
            });
        }
        for name in extract_possessive_names(text) {
            self.current_harvest.push(Harvested {
                data: DataType::DisplayName,
                value: name,
                source_protocol,
            });
        }
    }
}

fn base64ish(text: &str) -> String {
    // Stand-in for base64 (offline: no dep); reversible hex tagging.
    let hex: String = text.bytes().map(|b| format!("{b:02x}")).collect();
    format!("b64:{hex}")
}

impl Node for Phone {
    fn mac(&self) -> EthernetAddress {
        self.endpoint.mac
    }

    fn on_start(&mut self, ctx: &mut Context) {
        if !self.apps.is_empty() {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        let index = token as usize;
        if let Some(current) = self.current {
            self.finalize_app(current);
        }
        if index < self.apps.len() {
            self.start_app(ctx, index);
            ctx.set_timer(self.window, token + 1);
        }
    }

    fn on_frame(&mut self, ctx: &mut Context, frame: &[u8]) {
        let _ = ctx;
        if self.current.is_none() {
            return;
        }
        let Some(dissected) = stack::dissect(frame) else {
            return;
        };
        let src_mac = dissected.eth.src_addr;
        if src_mac == self.endpoint.mac {
            return;
        }
        let app = &self.apps[self.current.unwrap()];
        let (gate_mdns, gate_ssdp, gate_netbios, gate_tplink) = (
            app.uses_mdns(),
            app.uses_ssdp(),
            app.uses_netbios(),
            app.behaviors.contains(&AppBehavior::TplinkDiscovery),
        );
        match dissected.content {
            Content::UdpV4 { sport, dport, payload, .. } => {
                // mDNS responses — only a registered NsdManager listener
                // receives them.
                if (sport == dns::MDNS_PORT || dport == dns::MDNS_PORT) && gate_mdns {
                    if let Ok(message) = dns::Message::parse(payload) {
                        if message.is_response {
                            let text = message.text_content().join(" ");
                            self.harvest_text("mDNS", &text);
                            // mDNS source MAC is itself an identifier.
                            self.current_harvest.push(Harvested {
                                data: DataType::DeviceMac,
                                value: src_mac.to_string(),
                                source_protocol: "mDNS",
                            });
                        }
                    }
                } else if sport == ssdp::SSDP_PORT && dport != ssdp::SSDP_PORT && gate_ssdp {
                    // Unicast SSDP response to our M-SEARCH.
                    if let Ok(message) = ssdp::Message::parse(payload) {
                        let text = message.text_content().join(" ");
                        self.harvest_text("SSDP", &text);
                        self.current_harvest.push(Harvested {
                            data: DataType::UpnpDescriptor,
                            value: text.chars().take(120).collect(),
                            source_protocol: "SSDP",
                        });
                    }
                } else if sport == tplink::SHP_PORT && gate_tplink {
                    if let Ok(message) = tplink::Message::from_udp_bytes(payload) {
                        if let Some(info) = message.sysinfo() {
                            if let Some(id) = info.get("deviceId").and_then(|v| v.as_str()) {
                                self.current_harvest.push(Harvested {
                                    data: DataType::TplinkDeviceId,
                                    value: id.to_string(),
                                    source_protocol: "TPLINK_SHP",
                                });
                            }
                            if let Some(oem) = info.get("oemId").and_then(|v| v.as_str()) {
                                self.current_harvest.push(Harvested {
                                    data: DataType::TplinkOemId,
                                    value: oem.to_string(),
                                    source_protocol: "TPLINK_SHP",
                                });
                            }
                            if let Some((lat, lon)) = message.geolocation() {
                                self.current_harvest.push(Harvested {
                                    data: DataType::Geolocation,
                                    value: format!("{lat:.6},{lon:.6}"),
                                    source_protocol: "TPLINK_SHP",
                                });
                            }
                        }
                    }
                } else if (dport == 6666 || dport == 6667)
                    && self.apps[self.current.unwrap()]
                        .behaviors
                        .contains(&AppBehavior::TuyaDiscovery)
                {
                    if let Ok(frame) = tuya::Frame::parse(payload) {
                        if let Some(gw_id) = frame.gw_id() {
                            self.current_harvest.push(Harvested {
                                data: DataType::TuyaGwId,
                                value: gw_id.to_string(),
                                source_protocol: "TuyaLP",
                            });
                        }
                    }
                } else if sport == 137 && gate_netbios {
                    if let Ok(response) = iotlan_wire::netbios::NbstatResponse::parse(payload) {
                        for name in response.names {
                            self.current_harvest.push(Harvested {
                                data: DataType::NetbiosName,
                                value: name,
                                source_protocol: "NETBIOS",
                            });
                        }
                        let mac = EthernetAddress(response.mac);
                        self.current_harvest.push(Harvested {
                            data: DataType::DeviceMac,
                            value: mac.to_string(),
                            source_protocol: "NETBIOS",
                        });
                    }
                }
            }
            Content::Arp(repr) if repr.operation == arp::Operation::Reply => {
                // The gateway's MAC is router metadata, not an IoT device
                // identifier (they are counted separately in §6.1).
                let data = if repr.sender_protocol_addr == iotlan_netsim::router::GATEWAY_IP {
                    DataType::RouterMac
                } else {
                    DataType::DeviceMac
                };
                self.current_harvest.push(Harvested {
                    data,
                    value: repr.sender_hardware_addr.to_string(),
                    source_protocol: "ARP",
                });
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::android::AccessOutcome;
    use crate::app::{named_apps, AppCategory};
    use crate::appcensus::AppCensusReport;
    use iotlan_devices::{build_testbed, Device};
    use iotlan_netsim::router::Router;
    use iotlan_netsim::Network;

    fn phone_mac() -> EthernetAddress {
        EthernetAddress([0x02, 0x91, 0x0e, 0x00, 0x00, 0x01])
    }

    /// A small testbed: router + a handful of signature devices.
    fn mini_network(apps: Vec<AppConfig>) -> (Network, iotlan_netsim::NodeId) {
        let catalog = build_testbed();
        let mut network = Network::new(33);
        network.add_node(Box::new(Router::new()));
        for name in [
            "Philips Hue Bridge",
            "TP-Link Smart Plug",
            "Jinvoo Smart Bulb",
            "Roku Express",
            "Google Nest Hub",
        ] {
            let config = catalog.find(name).unwrap().clone();
            network.add_node(Box::new(Device::new(config)));
        }
        let mut phone = Phone::new(
            phone_mac(),
            Ipv4Addr::new(192, 168, 10, 240),
            "MonIoTr-Lab",
            iotlan_netsim::router::GATEWAY_MAC,
            apps,
        );
        let hue = catalog.find("Philips Hue Bridge").unwrap();
        phone.pair_tls_target(hue.ip, hue.mac);
        let id = network.add_node(Box::new(phone));
        (network, id)
    }

    #[test]
    fn mdns_scanning_app_harvests_identifiers() {
        let apps = vec![AppConfig {
            package: "test.mdns".into(),
            category: AppCategory::Regular,
            permissions: crate::android::poc_permissions(),
            behaviors: vec![AppBehavior::MdnsScan(vec!["_hue._tcp.local".into()])],
            sdks: vec![],
        }];
        let (mut network, id) = mini_network(apps);
        network.run_for(Phone::schedule_length(1) + SimDuration::from_secs(5));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        assert_eq!(phone.runs.len(), 1);
        let run = &phone.runs[0];
        assert!(run.protocols_used.contains(&"mDNS"));
        // Harvested the Hue's MAC-bearing mDNS data.
        assert!(
            run.harvested
                .iter()
                .any(|h| h.data == DataType::DeviceMac),
            "harvest: {:?}",
            run.harvested
        );
        // Side channel logged: no dangerous permission held.
        assert!(run
            .api_accesses
            .iter()
            .any(|(api, outcome)| *api == AndroidApi::NsdDiscoverMdns
                && *outcome == AccessOutcome::SideChannel));
    }

    #[test]
    fn tplink_discovery_harvests_geolocation() {
        let apps: Vec<AppConfig> = named_apps()
            .into_iter()
            .filter(|a| a.package == "com.tplink.kasa_android")
            .collect();
        let (mut network, id) = mini_network(apps);
        network.run_for(Phone::schedule_length(1) + SimDuration::from_secs(5));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        let run = &phone.runs[0];
        assert!(
            run.harvested
                .iter()
                .any(|h| h.data == DataType::Geolocation),
            "{:?}",
            run.harvested
        );
        assert!(run.exfiltrates(DataType::TplinkDeviceId));
        assert!(run.exfiltrates(DataType::TplinkOemId));
    }

    #[test]
    fn tuya_app_harvests_gwid() {
        let apps: Vec<AppConfig> = named_apps()
            .into_iter()
            .filter(|a| a.package == "com.tuya.smart")
            .collect();
        let (mut network, id) = mini_network(apps);
        // Tuya broadcasts every ~10 s; widen the app window to catch one.
        let phone_id = network.node_by_mac(phone_mac()).unwrap();
        network
            .node_mut(phone_id)
            .as_any_mut()
            .downcast_mut::<Phone>()
            .unwrap()
            .set_window(SimDuration::from_secs(25));
        network.run_for(SimDuration::from_secs(40));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        // Run may still be open; check harvest OR finished run.
        let has_gwid = phone
            .runs
            .iter()
            .flat_map(|r| &r.harvested)
            .chain(&phone.current_harvest)
            .any(|h| h.data == DataType::TuyaGwId);
        assert!(has_gwid);
    }

    #[test]
    fn router_info_collection_exfil() {
        let apps = vec![AppConfig {
            package: "test.router".into(),
            category: AppCategory::Regular,
            permissions: vec![
                crate::android::Permission::Internet,
                crate::android::Permission::NearbyWifiDevices,
            ],
            behaviors: vec![AppBehavior::CollectRouterInfo],
            sdks: vec![SdkKind::MyTracker],
        }];
        let (mut network, id) = mini_network(apps);
        network.run_for(Phone::schedule_length(1) + SimDuration::from_secs(2));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        let run = &phone.runs[0];
        assert!(run.exfiltrates(DataType::RouterSsid));
        assert!(run.exfiltrates(DataType::RouterMac));
        assert!(run.exfiltrates(DataType::WifiMac)); // MyTracker extra
        assert!(run
            .exfil
            .iter()
            .any(|e| e.endpoint.contains("tracker.my.com")));
    }

    #[test]
    fn multiple_apps_sequenced() {
        let apps = vec![
            AppConfig {
                package: "a.one".into(),
                category: AppCategory::Regular,
                permissions: crate::android::poc_permissions(),
                behaviors: vec![AppBehavior::SsdpScan(vec!["ssdp:all".into()])],
                sdks: vec![],
            },
            AppConfig {
                package: "a.two".into(),
                category: AppCategory::Regular,
                permissions: crate::android::poc_permissions(),
                behaviors: vec![],
                sdks: vec![],
            },
        ];
        let (mut network, id) = mini_network(apps);
        network.run_for(Phone::schedule_length(2) + SimDuration::from_secs(5));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        assert_eq!(phone.runs.len(), 2);
        assert_eq!(phone.runs[0].package, "a.one");
        assert_eq!(phone.runs[1].package, "a.two");
        let report = AppCensusReport::from_runs(&phone.runs);
        assert_eq!(report.total_apps, 2);
        assert_eq!(report.protocol_usage.get("SSDP"), Some(&1));
    }

    #[test]
    fn downlink_record() {
        let apps: Vec<AppConfig> = named_apps()
            .into_iter()
            .filter(|a| a.package == "com.amazon.dee.app")
            .collect();
        let (mut network, id) = mini_network(apps);
        network.run_for(Phone::schedule_length(1) + SimDuration::from_secs(5));
        let phone = network.node(id).as_any().downcast_ref::<Phone>().unwrap();
        assert!(phone.runs[0].receives_downlink(DataType::DeviceMac));
    }
}
