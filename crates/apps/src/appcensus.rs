//! AppCensus-style runtime instrumentation records and their aggregate
//! analysis (§3.2, §6.1).
//!
//! In the paper, a system-level instrumented Android 9 with Frida scripts
//! logs permission-protected API access and decrypts TLS to observe
//! exfiltration. Here, every [`TestRun`] carries the same observables: the
//! APIs the app touched (and whether a side channel was used), the LAN
//! traffic it generated, what it harvested from responses, and the
//! decrypted exfiltration payloads with their cloud endpoints. Taint is
//! structural: an [`ExfilRecord`]'s `values` are copied from the harvested
//! items, so "data leaves only if it was actually collected on the LAN"
//! holds by construction.

use crate::android::{AccessOutcome, AndroidApi};
use crate::app::AppCategory;
use crate::sdk::SdkKind;
use std::collections::{BTreeMap, BTreeSet};

/// The sensitive data types of §6.1's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// MAC address of an IoT device on the LAN.
    DeviceMac,
    /// The router/AP's MAC (BSSID).
    RouterMac,
    /// The router's SSID.
    RouterSsid,
    /// The phone's own Wi-Fi MAC.
    WifiMac,
    /// A persistent device UUID harvested from mDNS/SSDP.
    DeviceUuid,
    /// A user display name ("Danny's Room").
    DisplayName,
    /// Geolocation (from TPLINK-SHP or the phone's location API).
    Geolocation,
    /// The Android Advertising ID.
    AdvertisingId,
    /// The non-resettable Android ID.
    AndroidId,
    /// TP-Link device ID.
    TplinkDeviceId,
    /// TP-Link OEM ID.
    TplinkOemId,
    /// Tuya gwId / product key.
    TuyaGwId,
    /// NetBIOS machine names.
    NetbiosName,
    /// UPnP device descriptor contents (AppDynamics' harvest).
    UpnpDescriptor,
}

/// Direction of a flow between app and cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// App → cloud.
    Uplink,
    /// Cloud → app (the §6.1 downlink MAC dissemination).
    Downlink,
}

/// One item collected from the LAN during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Harvested {
    pub data: DataType,
    pub value: String,
    /// The protocol it came from ("mDNS", "SSDP", …).
    pub source_protocol: &'static str,
}

/// One decrypted exfiltration flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExfilRecord {
    /// Destination (uplink) or source (downlink) endpoint URL.
    pub endpoint: String,
    /// The SDK responsible, if not first-party code.
    pub sdk: Option<SdkKind>,
    pub direction: Direction,
    /// The typed data and concrete values carried.
    pub values: Vec<(DataType, String)>,
}

/// The full instrumentation record for one app test.
#[derive(Debug, Clone)]
pub struct TestRun {
    pub package: String,
    pub category: AppCategory,
    pub api_accesses: Vec<(AndroidApi, AccessOutcome)>,
    /// Protocol labels of LAN traffic the app generated.
    pub protocols_used: Vec<&'static str>,
    pub harvested: Vec<Harvested>,
    pub exfil: Vec<ExfilRecord>,
}

impl TestRun {
    /// Did the run exfiltrate a given data type uplink?
    pub fn exfiltrates(&self, data: DataType) -> bool {
        self.exfil.iter().any(|e| {
            e.direction == Direction::Uplink && e.values.iter().any(|(d, _)| *d == data)
        })
    }

    /// Did the run receive a given data type downlink?
    pub fn receives_downlink(&self, data: DataType) -> bool {
        self.exfil.iter().any(|e| {
            e.direction == Direction::Downlink && e.values.iter().any(|(d, _)| *d == data)
        })
    }
}

/// Aggregate report over all runs — the numbers of §4.3 and §6.1.
#[derive(Debug, Clone)]
pub struct AppCensusReport {
    pub total_apps: usize,
    /// App counts per LAN protocol used.
    pub protocol_usage: BTreeMap<&'static str, usize>,
    /// Uplink exfiltration counts per data type.
    pub exfil_counts: BTreeMap<DataType, usize>,
    /// Uplink exfiltration counts per data type, IoT-category apps only
    /// (the §6.1 "six IoT apps relay MAC addresses" framing).
    pub exfil_counts_iot: BTreeMap<DataType, usize>,
    /// Apps receiving device MACs downlink.
    pub downlink_mac_apps: usize,
    /// Exfiltration flows per SDK.
    pub sdk_flows: BTreeMap<SdkKind, usize>,
    /// Apps whose data reached each cloud endpoint.
    pub endpoints: BTreeSet<String>,
    /// Apps that used a permission side channel.
    pub side_channel_apps: usize,
}

impl AppCensusReport {
    pub fn from_runs(runs: &[TestRun]) -> AppCensusReport {
        let mut protocol_usage: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut exfil_counts: BTreeMap<DataType, usize> = BTreeMap::new();
        let mut exfil_counts_iot: BTreeMap<DataType, usize> = BTreeMap::new();
        let mut sdk_flows: BTreeMap<SdkKind, usize> = BTreeMap::new();
        let mut endpoints = BTreeSet::new();
        let mut downlink_mac_apps = 0;
        let mut side_channel_apps = 0;
        for run in runs {
            let protocols: BTreeSet<&'static str> = run.protocols_used.iter().copied().collect();
            for protocol in protocols {
                *protocol_usage.entry(protocol).or_insert(0) += 1;
            }
            let mut exfilled: BTreeSet<DataType> = BTreeSet::new();
            for record in &run.exfil {
                endpoints.insert(record.endpoint.clone());
                if let Some(sdk) = record.sdk {
                    *sdk_flows.entry(sdk).or_insert(0) += 1;
                }
                if record.direction == Direction::Uplink {
                    for (data, _) in &record.values {
                        exfilled.insert(*data);
                    }
                }
            }
            for data in exfilled {
                *exfil_counts.entry(data).or_insert(0) += 1;
                if run.category == AppCategory::Iot {
                    *exfil_counts_iot.entry(data).or_insert(0) += 1;
                }
            }
            if run.receives_downlink(DataType::DeviceMac) {
                downlink_mac_apps += 1;
            }
            if run
                .api_accesses
                .iter()
                .any(|(_, outcome)| *outcome == AccessOutcome::SideChannel)
            {
                side_channel_apps += 1;
            }
        }
        AppCensusReport {
            total_apps: runs.len(),
            protocol_usage,
            exfil_counts,
            exfil_counts_iot,
            downlink_mac_apps,
            sdk_flows,
            endpoints,
            side_channel_apps,
        }
    }

    /// Apps exfiltrating `data`, as a count.
    pub fn apps_exfiltrating(&self, data: DataType) -> usize {
        self.exfil_counts.get(&data).copied().unwrap_or(0)
    }

    /// IoT-category apps exfiltrating `data`.
    pub fn iot_apps_exfiltrating(&self, data: DataType) -> usize {
        self.exfil_counts_iot.get(&data).copied().unwrap_or(0)
    }

    /// Distinct LAN protocols used across all apps (§4.3: 18 unique).
    pub fn unique_protocols(&self) -> usize {
        self.protocol_usage.len()
    }

    /// Fraction of apps using a protocol.
    pub fn protocol_rate(&self, protocol: &str) -> f64 {
        self.protocol_usage
            .iter()
            .find(|(p, _)| **p == protocol)
            .map(|(_, c)| *c)
            .unwrap_or(0) as f64
            / self.total_apps.max(1) as f64
    }
}

/// Find MAC-address-shaped substrings in text (colon form) — the simple
/// extractor the phone uses on harvested responses.
pub fn extract_macs(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let is_hex = |b: u8| b.is_ascii_hexdigit();
    let mut i = 0;
    while i + 17 <= bytes.len() {
        let window = &bytes[i..i + 17];
        let mut ok = true;
        for (j, &b) in window.iter().enumerate() {
            if j % 3 == 2 {
                if b != b':' {
                    ok = false;
                    break;
                }
            } else if !is_hex(b) {
                ok = false;
                break;
            }
        }
        if ok {
            out.push(String::from_utf8_lossy(window).into_owned());
            i += 17;
        } else {
            i += 1;
        }
    }
    out
}

/// Find UUID-shaped substrings (8-4-4-4-12 hex).
pub fn extract_uuids(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let lens = [8usize, 4, 4, 4, 12];
    let total = 36;
    let mut i = 0;
    while i + total <= bytes.len() {
        let window = &bytes[i..i + total];
        let mut pos = 0;
        let mut ok = true;
        for (seg, &len) in lens.iter().enumerate() {
            for _ in 0..len {
                if !window[pos].is_ascii_hexdigit() {
                    ok = false;
                    break;
                }
                pos += 1;
            }
            if !ok {
                break;
            }
            if seg < 4 {
                if window[pos] != b'-' {
                    ok = false;
                    break;
                }
                pos += 1;
            }
        }
        if ok {
            out.push(String::from_utf8_lossy(window).into_owned());
            i += total;
        } else {
            i += 1;
        }
    }
    out
}

/// Find possessive display names ("Danny's Room" style): a word, an
/// apostrophe-s, and a following word.
pub fn extract_possessive_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Find a word start.
        if chars[i].is_alphabetic() {
            let word_start = i;
            while i < chars.len() && chars[i].is_alphanumeric() {
                i += 1;
            }
            // Expect 's followed by space and another word.
            if i + 2 < chars.len()
                && chars[i] == '\''
                && chars[i + 1] == 's'
                && chars[i + 2] == ' '
                && i + 3 < chars.len()
                && chars[i + 3].is_alphabetic()
            {
                let mut j = i + 3;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == ' ') {
                    j += 1;
                }
                let name: String = chars[word_start..j].iter().collect();
                out.push(name.trim_end().to_string());
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_extraction() {
        let text = "deviceid=00:17:88:68:5f:61 other 9c:8e:cd:0a:33:1b end";
        let macs = extract_macs(text);
        assert_eq!(macs, vec!["00:17:88:68:5f:61", "9c:8e:cd:0a:33:1b"]);
        assert!(extract_macs("no macs here 00:17:88").is_empty());
    }

    #[test]
    fn uuid_extraction() {
        let text = "uuid:2f402f80-da50-11e1-9b23-001788685f61::upnp:rootdevice";
        let uuids = extract_uuids(text);
        assert_eq!(uuids, vec!["2f402f80-da50-11e1-9b23-001788685f61"]);
        assert!(extract_uuids("2f402f80-da50-11e1").is_empty());
    }

    #[test]
    fn possessive_extraction() {
        let names = extract_possessive_names("Roku Express - Danny's Room, ok");
        assert_eq!(names, vec!["Danny's Room"]);
        let names = extract_possessive_names("Jane Doe's Kitchen Homepod");
        assert_eq!(names, vec!["Doe's Kitchen Homepod"]);
        assert!(extract_possessive_names("its nothing").is_empty());
    }

    #[test]
    fn report_aggregation() {
        let runs = vec![
            TestRun {
                package: "a".into(),
                category: AppCategory::Iot,
                api_accesses: vec![(AndroidApi::NsdDiscoverMdns, AccessOutcome::SideChannel)],
                protocols_used: vec!["mDNS", "ARP", "mDNS"],
                harvested: vec![],
                exfil: vec![ExfilRecord {
                    endpoint: "https://api.amplitude.com/2/httpapi".into(),
                    sdk: Some(SdkKind::Amplitude),
                    direction: Direction::Uplink,
                    values: vec![(DataType::DeviceMac, "00:17:88:68:5f:61".into())],
                }],
            },
            TestRun {
                package: "b".into(),
                category: AppCategory::Regular,
                api_accesses: vec![],
                protocols_used: vec!["SSDP"],
                harvested: vec![],
                exfil: vec![ExfilRecord {
                    endpoint: "https://cloud.example".into(),
                    sdk: None,
                    direction: Direction::Downlink,
                    values: vec![(DataType::DeviceMac, "aa:bb:cc:dd:ee:ff".into())],
                }],
            },
        ];
        let report = AppCensusReport::from_runs(&runs);
        assert_eq!(report.total_apps, 2);
        assert_eq!(report.protocol_usage["mDNS"], 1); // deduped per app
        assert_eq!(report.apps_exfiltrating(DataType::DeviceMac), 1);
        assert_eq!(report.downlink_mac_apps, 1);
        assert_eq!(report.sdk_flows[&SdkKind::Amplitude], 1);
        assert_eq!(report.side_channel_apps, 1);
        assert_eq!(report.unique_protocols(), 3);
        assert!((report.protocol_rate("mDNS") - 0.5).abs() < 1e-9);
    }
}
