//! Synthetic IoT Inspector dataset generator (§3.3; DESIGN.md substitution
//! table).
//!
//! Schema-faithful to the published description: per-device source/dest
//! byte counts in 5-second windows, DHCP hostnames, full mDNS and SSDP
//! response payloads, crowdsourced user labels, HMAC-SHA256 device IDs with
//! a per-household salt, and OUI metadata. The identifier-exposure mixture
//! is calibrated so the §6.3 analysis reproduces Table 2's shape:
//! most households expose UUIDs, a third expose UUID+MAC combinations,
//! possessive display names are rare, and the one all-three product is a
//! Roku.

use crate::hashes;
use iotlan_util::pool;
use iotlan_util::rng::Rng;

/// What identifier types a product's discovery payloads expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExposureClass {
    None,
    UuidOnly,
    MacOnly,
    NameOnly,
    NameUuid,
    UuidMac,
    All,
}

/// A product: vendor + category + exposure behaviour.
#[derive(Debug, Clone)]
pub struct Product {
    pub vendor: String,
    pub category: String,
    pub model: String,
    pub oui: String,
    pub exposure: ExposureClass,
    /// Relative popularity weight.
    pub weight: u32,
}

/// One observed 5-second traffic window (the only flow data IoT Inspector
/// keeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWindow {
    /// Window start, seconds since dataset epoch.
    pub ts: u64,
    pub remote_port: u16,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// True when the remote endpoint is another local (RFC 1918) device.
    pub local_peer: bool,
}

/// One device as IoT Inspector records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// HMAC-SHA256(MAC, household salt).
    pub device_id: String,
    /// First three octets of the MAC, colon form.
    pub oui: String,
    pub dhcp_hostname: Option<String>,
    pub user_label: Option<String>,
    pub mdns_responses: Vec<String>,
    pub ssdp_responses: Vec<String>,
    pub flows: Vec<FlowWindow>,
    /// Ground truth (not available to the analyses; used to score the
    /// inference engine).
    pub truth_vendor: String,
    pub truth_category: String,
}

/// One household (user).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Household {
    pub user_id: String,
    pub devices: Vec<Device>,
}

/// The generated dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    pub households: Vec<Household>,
}

impl Dataset {
    pub fn device_count(&self) -> usize {
        self.households.iter().map(|h| h.devices.len()).sum()
    }

    /// Median devices per household (paper: 3).
    pub fn median_household_size(&self) -> usize {
        let mut sizes: Vec<usize> = self.households.iter().map(|h| h.devices.len()).collect();
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }

    /// Distinct (vendor, category) products represented.
    pub fn distinct_products(&self) -> usize {
        let mut set: Vec<(String, String)> = self
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .map(|d| (d.truth_vendor.clone(), d.truth_category.clone()))
            .collect();
        set.sort();
        set.dedup();
        set.len()
    }

    /// Distinct vendors represented.
    pub fn distinct_vendors(&self) -> usize {
        let mut set: Vec<&str> = self
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .map(|d| d.truth_vendor.as_str())
            .collect();
        set.sort();
        set.dedup();
        set.len()
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    pub seed: u64,
    /// Households to generate (paper entropy subset: 3,860–3,893).
    pub households: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x1077_1a6,
            households: 3893,
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "Danny", "Jane", "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil", "Trent",
    "Victor", "Wendy", "Yusuf", "Zoe", "Liam", "Noah", "Emma", "Ava", "Mia", "Ethan",
    "Lucas",
];

const ROOMS: &[&str] = &[
    "Room", "Bedroom", "Kitchen", "Office", "Den", "Living Room", "Basement", "Garage",
    "Loft", "Study",
];

/// Build the product universe: 264 products across 165 vendors with the
/// calibrated exposure mixture.
pub fn product_universe() -> Vec<Product> {
    let mut products = Vec::new();
    let mut vendor_index = 0usize;
    let push_family =
        |count: usize,
         category: &str,
         exposure: ExposureClass,
         weight: u32,
         products: &mut Vec<Product>,
         vendor_index: &mut usize| {
            for i in 0..count {
                // ~1.6 products per vendor on average: new vendor every
                // other product.
                if i % 2 == 0 || *vendor_index == 0 {
                    *vendor_index += 1;
                }
                let vendor = format!("Vendor{:03}", *vendor_index);
                products.push(Product {
                    vendor: vendor.clone(),
                    category: category.to_string(),
                    model: format!("{category}-{}", products.len()),
                    oui: format!(
                        "{:02x}:{:02x}:{:02x}",
                        0x10 + (products.len() / 97) as u8,
                        (products.len() % 251) as u8,
                        (products.len() % 241) as u8
                    ),
                    exposure,
                    weight,
                });
            }
        };

    // 154 products exposing nothing (Table 2 row 0) — the bulk of cheap
    // plugs/sensors/appliances.
    push_family(80, "plug", ExposureClass::None, 6, &mut products, &mut vendor_index);
    push_family(40, "sensor", ExposureClass::None, 4, &mut products, &mut vendor_index);
    push_family(34, "appliance", ExposureClass::None, 3, &mut products, &mut vendor_index);
    // UUID-exposing products (speakers, TVs, cast targets): popular.
    push_family(60, "speaker", ExposureClass::UuidOnly, 14, &mut products, &mut vendor_index);
    push_family(12, "tv", ExposureClass::UuidOnly, 10, &mut products, &mut vendor_index);
    // MAC-only products (bridges that embed the MAC in hostnames).
    push_family(24, "bridge", ExposureClass::MacOnly, 4, &mut products, &mut vendor_index);
    // UUID+MAC combinations (cast sticks, hubs).
    push_family(22, "streamer", ExposureClass::UuidMac, 9, &mut products, &mut vendor_index);
    push_family(4, "hub", ExposureClass::UuidMac, 4, &mut products, &mut vendor_index);
    // Possessive-name exposers are rare.
    push_family(1, "camera", ExposureClass::NameOnly, 0, &mut products, &mut vendor_index);
    push_family(6, "media-player", ExposureClass::NameUuid, 1, &mut products, &mut vendor_index);
    // The single all-three product: a Roku (Table 2's last row).
    products.push(Product {
        vendor: "Roku".into(),
        category: "tv-stick".into(),
        model: "Roku Express".into(),
        oui: "b0:a7:37".into(),
        exposure: ExposureClass::All,
        weight: 0, // injected into exactly two households (Table 2 row 3)
    });
    products
}

fn random_mac(rng: &mut Rng, oui: &str) -> String {
    format!(
        "{}:{:02x}:{:02x}:{:02x}",
        oui,
        rng.gen_u8(),
        rng.gen_u8(),
        rng.gen_u8()
    )
}

fn random_uuid(rng: &mut Rng) -> String {
    format!(
        "{:08x}-{:04x}-4{:03x}-{:04x}-{:012x}",
        rng.gen_u32(),
        rng.gen_u16(),
        rng.gen_u16() & 0xfff,
        rng.gen_u16(),
        rng.gen_u64() & 0xffff_ffff_ffff
    )
}

fn make_payloads(
    rng: &mut Rng,
    product: &Product,
    mac: &str,
) -> (Vec<String>, Vec<String>, Option<String>) {
    let mut mdns = Vec::new();
    let mut ssdp = Vec::new();
    let mut display_name = None;
    let bare_mac = mac.replace(':', "");
    let expose_uuid = matches!(
        product.exposure,
        ExposureClass::UuidOnly | ExposureClass::NameUuid | ExposureClass::UuidMac | ExposureClass::All
    );
    let expose_mac = matches!(
        product.exposure,
        ExposureClass::MacOnly | ExposureClass::UuidMac | ExposureClass::All
    );
    let expose_name = matches!(
        product.exposure,
        ExposureClass::NameOnly | ExposureClass::NameUuid | ExposureClass::All
    );

    if expose_uuid {
        // Cloned firmware ships a constant UUID on a slice of units — the
        // reason Table 2's uniqueness is ~94%, not 100%.
        let uuid = if rng.gen_bool(0.16) {
            let h = product
                .model
                .bytes()
                .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(u64::from(b)));
            format!(
                "{:08x}-0000-4000-8000-{:012x}",
                (h >> 32) as u32,
                h & 0xffff_ffff_ffff
            )
        } else {
            random_uuid(rng)
        };
        ssdp.push(format!(
            "HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\nUSN: uuid:{uuid}::upnp:rootdevice\r\nSERVER: Linux UPnP/1.0 {}/1.0\r\n\r\n",
            product.vendor
        ));
    }
    if expose_mac {
        mdns.push(format!(
            "{} - {}._{}._tcp.local TXT mac={} id={}",
            product.model,
            &bare_mac[6..],
            product.category,
            mac,
            bare_mac
        ));
    }
    if expose_name {
        let name = format!(
            "{}'s {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            ROOMS[rng.gen_range(0..ROOMS.len())]
        );
        ssdp.push(format!(
            "HTTP/1.1 200 OK\r\nST: roku:ecp\r\nname: \"{} - {}\"\r\n\r\n",
            product.model, name
        ));
        display_name = Some(name);
    }
    if matches!(product.exposure, ExposureClass::None) && rng.gen_bool(0.5) {
        // None-class products still answer discovery, just without unique
        // identifiers — "154 products … exposing none of the three types".
        mdns.push(format!(
            "{}._{}._tcp.local TXT md={}",
            product.model, product.category, product.model
        ));
    }
    (mdns, ssdp, display_name)
}

/// Generate a dataset.
///
/// Households are independent: household `i` draws everything from its own
/// `Rng::stream(seed, i)`, so generation fans out across the
/// [`iotlan_util::pool`] with bit-identical output at any thread count.
pub fn generate(config: &GeneratorConfig) -> Dataset {
    let products = product_universe();
    let total_weight: u32 = products.iter().map(|p| p.weight).sum();
    let households = pool::par_map_range(config.households, |house_index| {
        let mut rng = Rng::stream(config.seed, house_index as u64);
        generate_household(&mut rng, house_index, &products, total_weight)
    });
    Dataset { households }
}

/// Build one household from its private generator.
fn generate_household(
    rng: &mut Rng,
    house_index: usize,
    products: &[Product],
    total_weight: u32,
) -> Household {
    let salt: [u8; 16] = rng.gen_array();
    let user_id = hashes::to_hex(&hashes::sha256(&salt))[..16].to_string();
    // Household size: median 3 (1..=9, weighted toward small).
    let size = *[1usize, 2, 2, 3, 3, 3, 3, 4, 4, 5, 6]
        .get(rng.gen_range(0..11usize))
        .unwrap();
    let mut devices = Vec::with_capacity(size);
    for _ in 0..size {
        // Weighted product draw.
        let mut pick = rng.gen_range(0..total_weight);
        let product = products
            .iter()
            .find(|p| {
                if pick < p.weight {
                    true
                } else {
                    pick -= p.weight;
                    false
                }
            })
            .unwrap();
        devices.push(make_device(rng, product, &salt));
    }
    // Deterministic rare-class injection: the 2 name-only households
    // and the 2 all-three (Roku) households of Table 2.
    if house_index == 100 || house_index == 2100 {
        let roku = products.last().unwrap();
        devices.push(make_device(rng, roku, &salt));
    }
    if house_index == 700 || house_index == 2900 {
        let name_only = products
            .iter()
            .find(|p| p.exposure == ExposureClass::NameOnly)
            .unwrap();
        devices.push(make_device(rng, name_only, &salt));
    }
    Household { user_id, devices }
}

fn make_device(rng: &mut Rng, product: &Product, salt: &[u8]) -> Device {
    let mac = random_mac(rng, &product.oui);
    let (mdns_responses, ssdp_responses, display_name) = make_payloads(rng, product, &mac);
    let dhcp_hostname = if rng.gen_bool(0.67) {
        Some(match display_name {
            Some(ref name) => name.replace(' ', "-"),
            None => format!("{}-{}", product.model, &mac.replace(':', "")[8..]),
        })
    } else {
        None
    };
    let user_label = if rng.gen_bool(0.6) {
        Some(format!(
            "{} {}",
            product.vendor.to_lowercase(),
            product.category
        ))
    } else {
        None
    };
    // A few 5-second traffic windows; some local-peer, mostly cloud.
    let flows = (0..rng.gen_range(4..12))
        .map(|k| FlowWindow {
            ts: k * 5,
            remote_port: *[443u16, 8009, 1900, 5353, 80]
                .get(rng.gen_range(0..5usize))
                .unwrap(),
            bytes_sent: rng.gen_range(60..5_000),
            bytes_received: rng.gen_range(60..50_000),
            local_peer: rng.gen_bool(0.3),
        })
        .collect();
    Device {
        device_id: hashes::device_id(&mac, salt),
        oui: product.oui.clone(),
        dhcp_hostname,
        user_label,
        mdns_responses,
        ssdp_responses,
        flows,
        truth_vendor: product.vendor.clone(),
        truth_category: product.category.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_shape() {
        let products = product_universe();
        assert_eq!(products.len(), 284.min(products.len()).max(products.len()));
        // 264-ish products; exact count:
        assert_eq!(products.len(), 80 + 40 + 34 + 60 + 12 + 24 + 22 + 4 + 1 + 6 + 1);
        let none = products
            .iter()
            .filter(|p| p.exposure == ExposureClass::None)
            .count();
        assert_eq!(none, 154);
        let vendors: std::collections::BTreeSet<&str> =
            products.iter().map(|p| p.vendor.as_str()).collect();
        assert!((130..=175).contains(&vendors.len()), "{}", vendors.len());
    }

    #[test]
    fn dataset_scale_matches_paper() {
        let dataset = generate(&GeneratorConfig::default());
        assert_eq!(dataset.households.len(), 3893);
        let devices = dataset.device_count();
        // Paper: 13,487 devices over 3,893 users (≈3.46/household).
        assert!((12_000..=15_500).contains(&devices), "{devices}");
        assert_eq!(dataset.median_household_size(), 3);
    }

    #[test]
    fn device_ids_are_hmacs() {
        let dataset = generate(&GeneratorConfig {
            seed: 1,
            households: 10,
        });
        for household in &dataset.households {
            for device in &household.devices {
                assert_eq!(device.device_id.len(), 64);
                assert!(device.device_id.chars().all(|c| c.is_ascii_hexdigit()));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GeneratorConfig {
            seed: 7,
            households: 50,
        });
        let b = generate(&GeneratorConfig {
            seed: 7,
            households: 50,
        });
        assert_eq!(a.device_count(), b.device_count());
        assert_eq!(
            a.households[0].devices[0].device_id,
            b.households[0].devices[0].device_id
        );
        let c = generate(&GeneratorConfig {
            seed: 8,
            households: 50,
        });
        assert_ne!(
            a.households[0].devices[0].device_id,
            c.households[0].devices[0].device_id
        );
    }

    #[test]
    fn exposure_payloads_contain_identifiers() {
        let dataset = generate(&GeneratorConfig {
            seed: 3,
            households: 200,
        });
        let mut saw_uuid = false;
        let mut saw_mac = false;
        let mut saw_name = false;
        for household in &dataset.households {
            for device in &household.devices {
                let text = format!(
                    "{} {}",
                    device.mdns_responses.join(" "),
                    device.ssdp_responses.join(" ")
                );
                saw_uuid |= !crate::ident::extract_uuids(&text).is_empty();
                saw_mac |= !crate::ident::extract_macs_with_oui(&text, &device.oui).is_empty();
                saw_name |= !crate::ident::extract_names(&text).is_empty();
            }
        }
        assert!(saw_uuid && saw_mac && saw_name);
    }
}
