//! The §6.3 identifier extractors over mDNS/SSDP payload text:
//!
//! 1. **Names** — "an English word followed by an apostrophe, 's', space,
//!    and another word" (the `Roku 3 - REDACTED's Room` pattern);
//! 2. **UUIDs** — the standard 8-4-4-4-12 pattern (RFC 4122);
//! 3. **MAC addresses** — "with and without ':' and '-'", filtered by
//!    checking the candidate against the device's OUI "to reduce false
//!    positives".
//!
//! Hand-rolled matchers (no regex dependency), case-insensitive where the
//! wire formats are.

/// A possessive-name match.
pub fn extract_names(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() {
            let start = i;
            while i < chars.len() && chars[i].is_alphanumeric() {
                i += 1;
            }
            // word + ' + s + space + word
            if i + 3 < chars.len()
                && chars[i] == '\''
                && (chars[i + 1] == 's' || chars[i + 1] == 'S')
                && chars[i + 2] == ' '
                && chars[i + 3].is_alphabetic()
            {
                let mut j = i + 3;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == ' ') {
                    j += 1;
                }
                out.push(chars[start..j].iter().collect::<String>().trim_end().to_string());
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// UUID matches (8-4-4-4-12 hex with dashes).
pub fn extract_uuids(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let segments = [8usize, 4, 4, 4, 12];
    const TOTAL: usize = 36;
    let mut i = 0;
    'outer: while i + TOTAL <= bytes.len() {
        // Avoid matching inside a longer hex run.
        if i > 0 && bytes[i - 1].is_ascii_hexdigit() {
            i += 1;
            continue;
        }
        let window = &bytes[i..i + TOTAL];
        let mut pos = 0;
        for (index, &len) in segments.iter().enumerate() {
            for _ in 0..len {
                if !window[pos].is_ascii_hexdigit() {
                    i += 1;
                    continue 'outer;
                }
                pos += 1;
            }
            if index < 4 {
                if window[pos] != b'-' {
                    i += 1;
                    continue 'outer;
                }
                pos += 1;
            }
        }
        out.push(String::from_utf8_lossy(window).to_lowercase());
        i += TOTAL;
    }
    out
}

/// MAC-address candidates in three syntaxes: `aa:bb:cc:dd:ee:ff`,
/// `aa-bb-cc-dd-ee-ff`, and the bare 12-hex-digit form. The bare form is
/// noisy, so [`extract_macs_with_oui`] filters by the known OUI.
pub fn extract_mac_candidates(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if let Some((mac, advance)) = match_separated(bytes, i, b':')
            .or_else(|| match_separated(bytes, i, b'-'))
        {
            out.push(mac);
            i += advance;
            continue;
        }
        if let Some((mac, advance)) = match_bare(bytes, i) {
            out.push(mac);
            i += advance;
            continue;
        }
        i += 1;
    }
    out
}

fn match_separated(bytes: &[u8], i: usize, sep: u8) -> Option<(String, usize)> {
    if i + 17 > bytes.len() {
        return None;
    }
    let window = &bytes[i..i + 17];
    for (j, &b) in window.iter().enumerate() {
        if j % 3 == 2 {
            if b != sep {
                return None;
            }
        } else if !b.is_ascii_hexdigit() {
            return None;
        }
    }
    let normalized: String = window
        .iter()
        .filter(|&&b| b != sep)
        .map(|&b| (b as char).to_ascii_lowercase())
        .collect();
    Some((normalized, 17))
}

fn match_bare(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if i + 12 > bytes.len() {
        return None;
    }
    // Must be exactly 12 hex digits with non-hex (or boundary) on each side.
    if i > 0 && bytes[i - 1].is_ascii_hexdigit() {
        return None;
    }
    let window = &bytes[i..i + 12];
    if !window.iter().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if i + 12 < bytes.len() && bytes[i + 12].is_ascii_hexdigit() {
        return None;
    }
    // Require at least one decimal digit: pure alphabetic 12-char strings
    // ("thermostatic") are words, not MACs.
    if !window.iter().any(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((
        window.iter().map(|&b| (b as char).to_ascii_lowercase()).collect(),
        12,
    ))
}

/// The paper's false-positive filter: keep candidates whose first six hex
/// digits match the OUI that IoT Inspector recorded for the device.
pub fn extract_macs_with_oui(text: &str, device_oui: &str) -> Vec<String> {
    let oui = device_oui.to_lowercase().replace([':', '-'], "");
    extract_mac_candidates(text)
        .into_iter()
        .filter(|mac| mac.starts_with(&oui))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_from_table2_examples() {
        assert_eq!(
            extract_names("Roku 3 - Danny's Room"),
            vec!["Danny's Room"]
        );
        assert_eq!(
            extract_names("name=\"Alice's Roku Express\" x"),
            vec!["Alice's Roku Express"]
        );
        assert!(extract_names("no possessives here").is_empty());
        // Bare apostrophe without 's' is not a possessive.
        assert!(extract_names("devices' room").is_empty());
    }

    #[test]
    fn uuids() {
        let text = "USN: uuid:2f402f80-da50-11e1-9b23-001788685f61::upnp:rootdevice";
        assert_eq!(
            extract_uuids(text),
            vec!["2f402f80-da50-11e1-9b23-001788685f61"]
        );
        assert!(extract_uuids("2f402f80-da50-11e1-9b23").is_empty());
        // Uppercase normalizes to lowercase.
        assert_eq!(
            extract_uuids("ABCDEF01-2345-6789-ABCD-EF0123456789"),
            vec!["abcdef01-2345-6789-abcd-ef0123456789"]
        );
    }

    #[test]
    fn mac_syntaxes() {
        let colon = extract_mac_candidates("mac=00:17:88:68:5F:61;");
        assert_eq!(colon, vec!["001788685f61"]);
        let dash = extract_mac_candidates("serial 9C-8E-CD-0A-33-1B end");
        assert_eq!(dash, vec!["9c8ecd0a331b"]);
        let bare = extract_mac_candidates("bridgeid=001788685f61 ");
        assert_eq!(bare, vec!["001788685f61"]);
    }

    #[test]
    fn bare_needs_digit_and_boundaries() {
        assert!(extract_mac_candidates("thermostatic").is_empty()); // no digit
        assert!(extract_mac_candidates("001788685f612").is_empty()); // 13 hex
        assert!(extract_mac_candidates("x001788685f61").len() == 1); // 'x' boundary
    }

    #[test]
    fn oui_filter() {
        let text = "bridgeid=001788685f61 session=deadbeef1234";
        // Philips OUI 001788: only the bridge id survives.
        assert_eq!(
            extract_macs_with_oui(text, "00:17:88"),
            vec!["001788685f61"]
        );
        // Wrong OUI: nothing survives.
        assert!(extract_macs_with_oui(text, "b0:a7:37").is_empty());
    }

    #[test]
    fn multiple_identifiers_in_one_payload() {
        // The Table 5 SSDP example: friendlyName serial + MAC + UUID.
        let payload = "<friendlyName>AMC020SC43PJ749D66</friendlyName>\
                       <serialNumber>9c:8e:cd:0a:33:1b</serialNumber>\
                       <UDN>uuid:deadbeef-9c8e-4d0a-b31b-9c8ecd0a331b</UDN>";
        let macs = extract_macs_with_oui(payload, "9c:8e:cd");
        assert!(macs.contains(&"9c8ecd0a331b".to_string()));
        assert_eq!(extract_uuids(payload).len(), 1);
    }
}
