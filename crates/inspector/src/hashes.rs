//! SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from
//! scratch — IoT Inspector anonymizes device MACs as
//! `HMAC-SHA256(MAC, salt)` with a per-user persistent salt (§3.3 fn. 2).

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// Compute the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    // Pad: message || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut message = data.to_vec();
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut h = H0;
    let mut w = [0u32; 64];
    for block in message.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA256(key, message) per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + message.len());
    let mut outer = Vec::with_capacity(96);
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Hex-encode a digest.
pub fn to_hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// The IoT Inspector device-ID scheme: HMAC of the MAC string with the
/// household's persistent salt.
pub fn device_id(mac: &str, salt: &[u8]) -> String {
    to_hex(&hmac_sha256(salt, mac.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_nist_vectors() {
        // FIPS 180-4 examples.
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_long_input() {
        // The million-'a' vector, checked against the published digest.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        let key = [0x0b; 20];
        let digest = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&digest),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2 ("Jefe").
        let digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&digest),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_hashed() {
        // RFC 4231 test case 6: 131-byte key forces the hash-the-key path.
        let key = [0xaa; 131];
        let digest = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            to_hex(&digest),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn device_ids_salted_per_household() {
        let mac = "00:17:88:68:5f:61";
        let id_a = device_id(mac, b"salt-household-a");
        let id_b = device_id(mac, b"salt-household-b");
        assert_ne!(id_a, id_b); // same device, different households
        assert_eq!(id_a, device_id(mac, b"salt-household-a")); // stable
        assert_eq!(id_a.len(), 64);
    }
}
