//! The Table 2 household-fingerprintability analysis (§6.3).
//!
//! For every device, extract names/UUIDs/MACs from its mDNS and SSDP
//! responses; classify devices by the *combination* of identifier types
//! they expose; then per combination report distinct products, vendors,
//! devices, households, the fraction of households uniquely identifiable
//! from those identifier values, and the entropy `log2(N)` (summed across
//! the types in the combination, matching the paper's additive combination
//! rows: 12.3 ≈ 3.4 + 8.9, 16.7 ≈ 8.9 + 7.8, 20.1 ≈ all three).

use crate::dataset::Dataset;
use crate::ident;
use iotlan_util::pool;
use std::collections::{BTreeMap, BTreeSet};

/// Which identifier types a device exposed (Table 2's "#" classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdentifierClass {
    pub name: bool,
    pub uuid: bool,
    pub mac: bool,
}

impl IdentifierClass {
    pub const NONE: IdentifierClass = IdentifierClass {
        name: false,
        uuid: false,
        mac: false,
    };

    /// Number of identifier types exposed (the "#" column).
    pub fn count(self) -> usize {
        usize::from(self.name) + usize::from(self.uuid) + usize::from(self.mac)
    }

    /// Label like "name, UUID".
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.name {
            parts.push("name");
        }
        if self.uuid {
            parts.push("UUID");
        }
        if self.mac {
            parts.push("MAC");
        }
        if parts.is_empty() {
            "N/A".into()
        } else {
            parts.join(", ")
        }
    }
}

/// One row of the Table 2 output.
#[derive(Debug, Clone)]
pub struct EntropyRow {
    pub class: IdentifierClass,
    pub products: usize,
    pub vendors: usize,
    pub devices: usize,
    pub households: usize,
    /// Fraction of the row's households whose identifier values are
    /// unique among them.
    pub unique_fraction: f64,
    /// log2(distinct values), summed over the types in the class.
    pub entropy_bits: f64,
}

/// The full analysis result.
#[derive(Debug, Clone)]
pub struct EntropyTable {
    pub rows: Vec<EntropyRow>,
    /// Households with at least one device carrying discovery payloads.
    pub analyzed_households: usize,
    pub analyzed_devices: usize,
}

impl EntropyTable {
    /// Find the row for a class.
    pub fn row(&self, name: bool, uuid: bool, mac: bool) -> Option<&EntropyRow> {
        self.rows
            .iter()
            .find(|r| r.class == IdentifierClass { name, uuid, mac })
    }

    /// Render the table as text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "#  Pdt  Vdr   Dev    Hse   Identifier(s)      Unique%   Ent\n",
        );
        let mut rows = self.rows.clone();
        rows.sort_by_key(|r| (r.class.count(), r.class));
        for row in rows {
            out.push_str(&format!(
                "{}  {:>3}  {:>3}  {:>5}  {:>5}  {:<17} {:>6.1}%  {:>5.1}\n",
                row.class.count(),
                row.products,
                row.vendors,
                row.devices,
                row.households,
                row.class.label(),
                row.unique_fraction * 100.0,
                row.entropy_bits,
            ));
        }
        out
    }
}

/// The identifier values one device exposes in its discovery payloads —
/// the extraction step shared by the batch Table 2 analysis below and the
/// bounded-memory crowd estimator in `iotlan-stream`.
#[derive(Debug, Clone)]
pub struct DeviceIdentifiers {
    pub class: IdentifierClass,
    pub names: Vec<String>,
    pub uuids: Vec<String>,
    pub macs: Vec<String>,
}

/// Extract a device's exposed identifiers. `None` when the device carries
/// no discovery payloads (such devices were never collected and are
/// excluded from every Table 2 aggregate).
pub fn extract_device_identifiers(device: &crate::dataset::Device) -> Option<DeviceIdentifiers> {
    if device.mdns_responses.is_empty() && device.ssdp_responses.is_empty() {
        return None;
    }
    let text = format!(
        "{}\n{}",
        device.mdns_responses.join("\n"),
        device.ssdp_responses.join("\n")
    );
    let names = ident::extract_names(&text);
    let uuids = ident::extract_uuids(&text);
    let macs = ident::extract_macs_with_oui(&text, &device.oui);
    Some(DeviceIdentifiers {
        class: IdentifierClass {
            name: !names.is_empty(),
            uuid: !uuids.is_empty(),
            mac: !macs.is_empty(),
        },
        names,
        uuids,
        macs,
    })
}

struct DeviceExtraction<'a> {
    household: usize,
    vendor: &'a str,
    product: (String, String),
    class: IdentifierClass,
    names: Vec<String>,
    uuids: Vec<String>,
    macs: Vec<String>,
}

/// Run the §6.3 analysis.
///
/// Identifier extraction — the string-scanning hot loop — fans out across
/// the pool per household; the flattened extraction list is rebuilt in
/// household order, so every downstream aggregate is thread-count
/// invariant.
pub fn analyze(dataset: &Dataset) -> EntropyTable {
    let per_household: Vec<Vec<DeviceExtraction>> =
        pool::par_map(&dataset.households, |house_index, household| {
            household
                .devices
                .iter()
                .filter_map(|device| {
                    let identifiers = extract_device_identifiers(device)?;
                    Some(DeviceExtraction {
                        household: house_index,
                        vendor: &device.truth_vendor,
                        product: (device.truth_vendor.clone(), device.truth_category.clone()),
                        class: identifiers.class,
                        names: identifiers.names,
                        uuids: identifiers.uuids,
                        macs: identifiers.macs,
                    })
                })
                .collect()
        });
    let analyzed_households: BTreeSet<usize> = per_household
        .iter()
        .enumerate()
        .filter(|(_, extractions)| !extractions.is_empty())
        .map(|(house_index, _)| house_index)
        .collect();
    let extractions: Vec<DeviceExtraction> = per_household.into_iter().flatten().collect();

    // Group by class.
    let mut by_class: BTreeMap<IdentifierClass, Vec<&DeviceExtraction>> = BTreeMap::new();
    for extraction in &extractions {
        by_class.entry(extraction.class).or_default().push(extraction);
    }

    // Global per-type value spaces: the paper's entropy is per identifier
    // *type* (name 3.4, UUID 8.9, MAC 7.8 bits) and combination rows add
    // them (12.3 ≈ 3.4+8.9; 16.7 ≈ 8.9+7.8; 20.1 ≈ all three).
    let mut global_names: BTreeSet<&str> = BTreeSet::new();
    let mut global_uuids: BTreeSet<&str> = BTreeSet::new();
    let mut global_macs: BTreeSet<&str> = BTreeSet::new();
    for extraction in &extractions {
        global_names.extend(extraction.names.iter().map(String::as_str));
        global_uuids.extend(extraction.uuids.iter().map(String::as_str));
        global_macs.extend(extraction.macs.iter().map(String::as_str));
    }
    let bits = |n: usize| if n == 0 { 0.0 } else { (n as f64).log2() };
    let name_bits = bits(global_names.len());
    let uuid_bits = bits(global_uuids.len());
    let mac_bits = bits(global_macs.len());

    let mut rows = Vec::new();
    for (class, devices) in &by_class {
        let products: BTreeSet<&(String, String)> = devices.iter().map(|d| &d.product).collect();
        let vendors: BTreeSet<&str> = devices.iter().map(|d| d.vendor).collect();
        let households: BTreeSet<usize> = devices.iter().map(|d| d.household).collect();

        // Per-household identifier value sets (for uniqueness).
        let mut per_household: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for device in devices {
            let entry = per_household.entry(device.household).or_default();
            for v in &device.names {
                entry.insert(format!("n:{v}"));
            }
            for v in &device.uuids {
                entry.insert(format!("u:{v}"));
            }
            for v in &device.macs {
                entry.insert(format!("m:{v}"));
            }
        }
        // Uniqueness: households whose value-set is unique among this row's
        // households.
        let mut signature_counts: BTreeMap<&BTreeSet<String>, usize> = BTreeMap::new();
        for values in per_household.values() {
            *signature_counts.entry(values).or_insert(0) += 1;
        }
        let unique_households = per_household
            .values()
            .filter(|values| signature_counts[*values] == 1 && !values.is_empty())
            .count();
        let unique_fraction = if class.count() == 0 {
            0.0
        } else {
            unique_households as f64 / households.len().max(1) as f64
        };

        let mut entropy_bits = 0.0;
        if class.name {
            entropy_bits += name_bits;
        }
        if class.uuid {
            entropy_bits += uuid_bits;
        }
        if class.mac {
            entropy_bits += mac_bits;
        }

        rows.push(EntropyRow {
            class: *class,
            products: products.len(),
            vendors: vendors.len(),
            devices: devices.len(),
            households: households.len(),
            unique_fraction,
            entropy_bits,
        });
    }

    EntropyTable {
        rows,
        analyzed_households: analyzed_households.len(),
        analyzed_devices: extractions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, GeneratorConfig};

    fn table() -> EntropyTable {
        analyze(&generate(&GeneratorConfig::default()))
    }

    #[test]
    fn class_labels() {
        assert_eq!(IdentifierClass::NONE.label(), "N/A");
        assert_eq!(
            IdentifierClass {
                name: true,
                uuid: true,
                mac: false
            }
            .label(),
            "name, UUID"
        );
        assert_eq!(IdentifierClass::NONE.count(), 0);
    }

    #[test]
    fn rows_cover_paper_classes() {
        let table = table();
        assert!(table.row(false, false, false).is_some(), "none row");
        assert!(table.row(false, true, false).is_some(), "uuid row");
        assert!(table.row(false, false, true).is_some(), "mac row");
        assert!(table.row(false, true, true).is_some(), "uuid+mac row");
        assert!(table.row(true, true, true).is_some(), "all row");
    }

    #[test]
    fn uuid_row_shape_matches_table2() {
        let table = table();
        let row = table.row(false, true, false).unwrap();
        // Paper: 2,814 households exposing UUIDs only; 94.2% unique; 8.9
        // bits. Shape bands:
        assert!(
            (2_300..=3_300).contains(&row.households),
            "households {}",
            row.households
        );
        assert!(row.unique_fraction > 0.90, "unique {}", row.unique_fraction);
        assert!(
            (8.0..=14.0).contains(&row.entropy_bits),
            "entropy {}",
            row.entropy_bits
        );
    }

    #[test]
    fn combination_rows_add_entropy() {
        let table = table();
        let uuid = table.row(false, true, false).unwrap().entropy_bits;
        let uuid_mac = table.row(false, true, true).unwrap().entropy_bits;
        let all = table.row(true, true, true).unwrap().entropy_bits;
        // More identifier types → strictly more bits (the paper's 8.9 →
        // 16.7 → 20.1 progression).
        assert!(uuid_mac > uuid, "{uuid_mac} vs {uuid}");
        assert!(all > 10.0, "all-row entropy {all}");
        // Combination rows beat the 10.5-bit User-Agent baseline the paper
        // cites for ≥2 identifiers.
        assert!(uuid_mac > 10.5);
    }

    #[test]
    fn uuid_mac_row_uniqueness() {
        let table = table();
        let row = table.row(false, true, true).unwrap();
        // Paper: 1,182 households, 95.6% uniquely identifiable.
        assert!(
            (800..=1_800).contains(&row.households),
            "households {}",
            row.households
        );
        assert!(row.unique_fraction > 0.93, "{}", row.unique_fraction);
    }

    #[test]
    fn all_three_row_is_roku_and_tiny() {
        let table = table();
        let row = table.row(true, true, true).unwrap();
        assert_eq!(row.products, 1);
        assert_eq!(row.vendors, 1);
        assert!((2..=4).contains(&row.households), "{}", row.households);
        assert!(row.unique_fraction >= 0.99);
    }

    #[test]
    fn none_row_large() {
        let table = table();
        let row = table.row(false, false, false).unwrap();
        // Paper row 0: 154 products / 1,811 households exposing nothing.
        assert!(row.households > 1_000, "{}", row.households);
        assert_eq!(row.unique_fraction, 0.0);
        assert_eq!(row.entropy_bits, 0.0);
    }

    #[test]
    fn render_contains_all_rows() {
        let table = table();
        let rendered = table.render();
        assert!(rendered.contains("UUID, MAC"));
        assert!(rendered.contains("N/A"));
        assert!(rendered.lines().count() >= 6);
    }
}
