//! Device-identity inference — the Appendix E replacement.
//!
//! The paper fed user labels, DHCP hostnames and mDNS/SSDP responses to
//! OpenAI's TextCompletion API to infer vendor and category for 25,033
//! devices. We substitute a deterministic rule engine over the same three
//! metadata fields (keyword table + OUI registry fallback), which is
//! reproducible and runs offline. Accuracy is scored against the
//! generator's ground truth.

use crate::dataset::{Dataset, Device};
use iotlan_util::pool;

/// An inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inference {
    pub vendor: Option<String>,
    pub category: Option<String>,
}

/// Category keywords → canonical category. Order matters: first hit wins.
const CATEGORY_RULES: &[(&str, &str)] = &[
    ("camera", "camera"),
    ("cam", "camera"),
    ("doorbell", "camera"),
    ("tv-stick", "tv-stick"),
    ("roku", "tv-stick"),
    ("streamer", "streamer"),
    ("cast", "streamer"),
    ("tv", "tv"),
    ("speaker", "speaker"),
    ("echo", "speaker"),
    ("homepod", "speaker"),
    ("bridge", "bridge"),
    ("hue", "bridge"),
    ("hub", "hub"),
    ("plug", "plug"),
    ("switch", "plug"),
    ("bulb", "plug"),
    ("sensor", "sensor"),
    ("scale", "sensor"),
    ("thermostat", "sensor"),
    ("appliance", "appliance"),
    ("fridge", "appliance"),
    ("washer", "appliance"),
    ("media-player", "media-player"),
    ("media", "media-player"),
];

/// Infer vendor and category for a device from its metadata, with an
/// OUI-registry fallback for the vendor.
pub fn infer_device(device: &Device, oui_registry: &[(String, String)]) -> Inference {
    let mut corpus = String::new();
    if let Some(label) = &device.user_label {
        corpus.push_str(label);
        corpus.push(' ');
    }
    if let Some(hostname) = &device.dhcp_hostname {
        corpus.push_str(hostname);
        corpus.push(' ');
    }
    for payload in device.mdns_responses.iter().chain(&device.ssdp_responses) {
        corpus.push_str(payload);
        corpus.push(' ');
    }
    let corpus = corpus.to_lowercase();

    // Vendor: look for a known vendor name in the text, else the OUI.
    let mut vendor = oui_registry
        .iter()
        .find(|(_, name)| corpus.contains(&name.to_lowercase()))
        .map(|(_, name)| name.clone());
    if vendor.is_none() {
        vendor = oui_registry
            .iter()
            .find(|(oui, _)| *oui == device.oui)
            .map(|(_, name)| name.clone());
    }

    let category = CATEGORY_RULES
        .iter()
        .find(|(keyword, _)| corpus.contains(keyword))
        .map(|(_, category)| category.to_string());

    Inference { vendor, category }
}

/// Build an OUI registry from a dataset's ground truth (standing in for
/// IoT Inspector's curated OUI database).
pub fn registry_from_dataset(dataset: &Dataset) -> Vec<(String, String)> {
    let mut registry: Vec<(String, String)> = dataset
        .households
        .iter()
        .flat_map(|h| &h.devices)
        .map(|d| (d.oui.clone(), d.truth_vendor.clone()))
        .collect();
    registry.sort();
    registry.dedup();
    registry
}

/// Inference accuracy over a dataset: (vendor accuracy, category accuracy,
/// coverage = fraction with at least two metadata fields, mirroring the
/// paper's ≥2-field filter).
pub fn score(dataset: &Dataset) -> (f64, f64, f64) {
    let registry = registry_from_dataset(dataset);
    // Per-household tallies are independent — fan the rule engine out
    // across the pool and merge counts in household order.
    #[derive(Default)]
    struct Tally {
        eligible: usize,
        vendor_hits: usize,
        category_hits: usize,
        total: usize,
    }
    let tally = pool::par_map_reduce(
        &dataset.households,
        Tally::default,
        |acc, _, household| {
            for device in &household.devices {
                acc.total += 1;
                let fields = usize::from(device.user_label.is_some())
                    + usize::from(device.dhcp_hostname.is_some())
                    + usize::from(
                        !device.mdns_responses.is_empty() || !device.ssdp_responses.is_empty(),
                    );
                if fields < 2 {
                    continue;
                }
                acc.eligible += 1;
                let inference = infer_device(device, &registry);
                if inference.vendor.as_deref() == Some(device.truth_vendor.as_str()) {
                    acc.vendor_hits += 1;
                }
                if inference.category.as_deref() == Some(device.truth_category.as_str()) {
                    acc.category_hits += 1;
                }
            }
        },
        |acc, part| {
            acc.eligible += part.eligible;
            acc.vendor_hits += part.vendor_hits;
            acc.category_hits += part.category_hits;
            acc.total += part.total;
        },
    );
    (
        tally.vendor_hits as f64 / tally.eligible.max(1) as f64,
        tally.category_hits as f64 / tally.eligible.max(1) as f64,
        tally.eligible as f64 / tally.total.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, GeneratorConfig};

    #[test]
    fn infers_vendor_from_label_and_oui() {
        let dataset = generate(&GeneratorConfig {
            seed: 5,
            households: 300,
        });
        let registry = registry_from_dataset(&dataset);
        let device = dataset
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .find(|d| d.user_label.is_some())
            .unwrap();
        let inference = infer_device(device, &registry);
        assert_eq!(inference.vendor.as_deref(), Some(device.truth_vendor.as_str()));
    }

    #[test]
    fn oui_fallback_when_no_text() {
        let dataset = generate(&GeneratorConfig {
            seed: 5,
            households: 300,
        });
        let registry = registry_from_dataset(&dataset);
        // A device with no label still resolves through its OUI.
        let device = dataset
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .find(|d| d.user_label.is_none())
            .unwrap();
        let inference = infer_device(device, &registry);
        assert!(inference.vendor.is_some());
    }

    #[test]
    fn accuracy_high_on_eligible_devices() {
        let dataset = generate(&GeneratorConfig {
            seed: 11,
            households: 500,
        });
        let (vendor_acc, category_acc, coverage) = score(&dataset);
        assert!(vendor_acc > 0.9, "vendor accuracy {vendor_acc}");
        assert!(category_acc > 0.7, "category accuracy {category_acc}");
        assert!(coverage > 0.5, "coverage {coverage}");
    }
}
