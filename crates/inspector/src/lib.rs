//! # iotlan-inspector
//!
//! The crowdsourced-data side of the paper (§3.3, §6.3, Appendix E): a
//! synthetic stand-in for the IoT Inspector dataset with the same schema
//! and exposure structure, plus the household-fingerprintability analysis.
//!
//! * [`hashes`] — SHA-256 and HMAC-SHA256 from scratch (IoT Inspector
//!   device IDs are `HMAC-SHA256(MAC, per-user salt)`).
//! * [`dataset`] — a seeded generator for households, devices (OUI, DHCP
//!   hostname, user label, mDNS/SSDP response payloads) and 5-second
//!   byte-count flow windows.
//! * [`ident`] — the §6.3 identifier extractors: possessive names, UUIDs,
//!   and MAC addresses (with and without separators, cross-checked against
//!   the device's OUI to reduce false positives).
//! * [`entropy`] — the Table 2 analysis: identifier-combination classes,
//!   per-class product/vendor/device/household counts, unique-household
//!   percentages, and `log2(N)` entropy.
//! * [`infer`] — the Appendix E replacement: deterministic, rule-based
//!   vendor/category inference over user labels, DHCP hostnames and
//!   discovery payloads (standing in for the paper's TextCompletion use).

pub mod dataset;
pub mod entropy;
pub mod hashes;
pub mod ident;
pub mod infer;

pub use dataset::{Dataset, Device, GeneratorConfig, Household};
pub use entropy::{analyze, EntropyRow, EntropyTable, IdentifierClass};
pub use hashes::{hmac_sha256, sha256};
