//! The long run: §3.1 at paper scale — the five-day idle capture plus
//! 7,191 scripted interactions — streamed through the single-pass engine
//! so the capture is never materialized. The once-daily behaviours (the
//! Amazon Echo broadcast ARP sweep and its unicast follow-ups) appear in
//! the stream, and the §4/§5/App. D statistics come straight from the
//! engine's report.
//!
//! Five simulated days take tens of minutes of wall time in release mode;
//! pass `--quick` for a one-hour smoke run (daily-event assertions are
//! skipped, since a day never elapses).
//!
//! ```sh
//! cargo run --release --example paper_scale
//! cargo run --release --example paper_scale -- --quick
//! ```

use iotlan::netsim::stack::{self, Content};
use iotlan::netsim::{FrameSink, SimDuration, SimTime};
use iotlan::stream::StreamEngine;
use iotlan::wire::arp;
use iotlan::wire::ethernet::EthernetAddress;
use iotlan::{Lab, LabConfig};

/// The streaming tap: forwards every frame to the analysis engine and, on
/// the side, counts the Echo's ARP sweep probes — the one statistic that
/// needs per-frame (not per-flow) evidence.
struct PaperScaleSink {
    engine: StreamEngine,
    echo_mac: EthernetAddress,
    broadcast_requests: u64,
    unicast_requests: u64,
}

impl FrameSink for PaperScaleSink {
    fn on_frame(&mut self, time: SimTime, data: &[u8]) {
        self.engine.on_frame(time, data);
        if let Some(dissected) = stack::dissect(data) {
            if dissected.eth.src_addr == self.echo_mac {
                if let Content::Arp(repr) = dissected.content {
                    if repr.operation == arp::Operation::Request {
                        if dissected.eth.dst_addr.is_broadcast() {
                            self.broadcast_requests += 1;
                        } else {
                            self.unicast_requests += 1;
                        }
                    }
                }
            }
        }
    }
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let started = std::time::Instant::now();
    let config = LabConfig {
        idle_duration: if quick {
            SimDuration::from_hours(1)
        } else {
            SimDuration::from_days(5)
        },
        interactions: if quick { 100 } else { 7_191 },
        ..LabConfig::paper_scale()
    };
    let mut lab = Lab::new(config);
    let echo_mac = lab.catalog.find("Amazon Echo Spot").unwrap().mac;
    let mut sink = PaperScaleSink {
        engine: StreamEngine::new(&lab.catalog),
        echo_mac,
        broadcast_requests: 0,
        unicast_requests: 0,
    };
    println!(
        "streaming {} idle capture + {} interactions…",
        if quick { "1 h (--quick)" } else { "5 d" },
        lab.config.interactions
    );
    lab.run_streaming(
        SimDuration::from_hours(2),
        SimDuration::from_mins(10),
        &mut sink,
    );
    let report = sink.engine.finish().expect("frame-fed engine cannot fail");
    println!(
        "streamed {} frames ({} sim time) in {:.1} s wall",
        report.packets,
        lab.network.now(),
        started.elapsed().as_secs_f64()
    );
    println!(
        "peak streaming state: {:.2} MiB vs {:.2} MiB in-memory capture ({:.0}x smaller)",
        report.peak_state_bytes as f64 / (1024.0 * 1024.0),
        report.streamed_bytes as f64 / (1024.0 * 1024.0),
        report.streamed_bytes as f64 / (report.peak_state_bytes as f64).max(1.0),
    );

    // The daily Echo ARP sweep (§5.1): broadcast requests across the /24
    // plus targeted unicast probes, counted by the tap as they streamed by.
    println!(
        "\nEcho Spot ARP activity: {} broadcast sweep probes, \
         {} targeted unicast probes",
        sink.broadcast_requests, sink.unicast_requests
    );
    if !quick {
        assert!(
            sink.broadcast_requests >= 253,
            "the daily /24 sweep must appear"
        );
        assert!(sink.unicast_requests > 0, "unicast follow-ups must appear");
        assert!(
            report.streamed_bytes >= 10 * report.peak_state_bytes as u64,
            "paper-scale streaming must run in at least 10x less state \
             than the in-memory capture"
        );
    }

    // Figure 1 at full scale, from the engine's edge accumulators.
    let graph = report.graph(&lab.catalog);
    let mut connected: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (src, dst) in graph.edges.keys() {
        connected.insert(src);
        connected.insert(dst);
    }
    println!(
        "\ndevices with a local unicast peer: {}/{} (paper: 43/93)",
        connected.len(),
        graph.nodes.len()
    );

    // Figure 2 key rates at full scale.
    let prevalence = report.prevalence(&lab.catalog);
    for protocol in ["mDNS", "SSDP", "TPLINK_SHP", "TuyaLP", "RTP", "LIFX"] {
        println!(
            "{protocol:<12} observed on {:.1}% of devices",
            prevalence.passive_rate(protocol) * 100.0
        );
    }

    // Periodicity at full scale. Long runs overflow the per-key event cap,
    // so the report may be a prefix sample rather than exact — say which.
    let periodicity = report.periodicity();
    println!(
        "\nperiodicity ({}): {:.1}% of decidable discovery groups periodic, \
         {} periodic groups, {:.1} per device (paper: 88% / 580 / 6.2)",
        if report.periodicity_exact {
            "exact"
        } else {
            "prefix-sampled"
        },
        periodicity.discovery_periodic_fraction() * 100.0,
        periodicity.periodic_group_count(),
        periodicity.periodic_groups_per_device()
    );

    // TP-Link control interactions show up in the protocol sketch: an
    // overestimate-only packet count for the TPLINK_SHP label.
    println!(
        "TPLINK-SHP packets (Count-Min estimate): {}",
        report.protocol_packets.estimate(b"TPLINK_SHP")
    );
}
