//! The long run: §3.1 at paper scale — a 30-hour idle capture plus 7,191
//! scripted interactions — so that the once-daily behaviours (the Amazon
//! Echo broadcast ARP sweep and its unicast follow-ups) appear in the
//! capture, then the full §4/§5 statistics over it.
//!
//! Takes a few minutes of wall time in release mode.
//!
//! ```sh
//! cargo run --release --example paper_scale
//! ```

use iotlan::classify::flow::Transport;
use iotlan::netsim::stack::{self, Content};
use iotlan::netsim::SimDuration;
use iotlan::wire::arp;
use iotlan::{experiments, Lab, LabConfig};

fn main() {
    let started = std::time::Instant::now();
    let mut lab = Lab::new(LabConfig::paper_scale());
    println!("running 30 h idle capture + 7,191 interactions…");
    lab.run_idle();
    lab.run_interactions(SimDuration::from_hours(2));
    println!(
        "captured {} frames ({} sim time) in {:.1} s wall",
        lab.network.capture.len(),
        lab.network.now(),
        started.elapsed().as_secs_f64()
    );

    // The daily Echo ARP sweep (§5.1): broadcast requests across the /24
    // plus targeted unicast probes.
    let echo = lab.catalog.find("Amazon Echo Spot").unwrap();
    let mut broadcast_requests = 0u64;
    let mut unicast_requests = 0u64;
    for frame in lab.network.capture.sent_by(echo.mac) {
        if let Some(Content::Arp(repr)) = stack::dissect(&frame.data).map(|d| d.content) {
            if repr.operation == arp::Operation::Request {
                if frame.dst_mac().is_broadcast() {
                    broadcast_requests += 1;
                } else {
                    unicast_requests += 1;
                }
            }
        }
    }
    println!(
        "\nEcho Spot ARP activity: {broadcast_requests} broadcast sweep probes, \
         {unicast_requests} targeted unicast probes"
    );
    assert!(broadcast_requests >= 253, "the daily /24 sweep must appear");
    assert!(unicast_requests > 0, "unicast follow-ups must appear");

    // Figure 1 at full scale.
    let fig1 = experiments::fig1_device_graph(&lab);
    println!(
        "\ndevices with a local unicast peer: {}/{} (paper: 43/93)",
        fig1.connected_devices, fig1.total_devices
    );

    // Figure 2 key rates at full scale.
    let fig2 = experiments::fig2_prevalence(&lab, None);
    for protocol in ["mDNS", "SSDP", "TPLINK_SHP", "TuyaLP", "RTP", "LIFX"] {
        println!(
            "{protocol:<12} observed on {:.1}% of devices",
            fig2.prevalence.passive_rate(protocol) * 100.0
        );
    }

    // Periodicity at full scale — closer to the paper's 88%/580/6.2 than
    // the 2-hour bench.
    let appd1 = experiments::appd1_periodicity(&lab);
    println!(
        "\nperiodicity: {:.1}% of decidable discovery groups periodic, \
         {} periodic groups, {:.1} per device (paper: 88% / 580 / 6.2)",
        appd1.report.discovery_periodic_fraction() * 100.0,
        appd1.report.periodic_group_count(),
        appd1.report.periodic_groups_per_device()
    );

    // TP-Link control interactions leave TPLINK-SHP TCP flows.
    let table = lab.flow_table();
    let shp_tcp = table
        .flows
        .iter()
        .filter(|f| {
            f.key.transport == Transport::Tcp
                && (f.key.dst_port == 9999 || f.key.src_port == 9999)
        })
        .count();
    println!("TPLINK-SHP TCP control flows from interactions: {shp_tcp}");
}
