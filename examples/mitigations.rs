//! §7 mitigations, quantified: what actually happens to the attack surface
//! when the paper's proposed defenses are applied.
//!
//! 1. **iOS-style local-network consent** — deny the multicast side
//!    channel to unconsented apps: the PoC scanner goes blind.
//! 2. **Identifier minimization** — strip UUIDs/MACs from discovery
//!    payloads: household uniqueness collapses (see also
//!    `ablation_id_minimization`).
//! 3. **Hostname randomization** (the GE Microwave scheme): DHCP-level
//!    tracking breaks.
//!
//! ```sh
//! cargo run --release --example mitigations
//! ```

use iotlan::apps::android::{evaluate_access, poc_permissions, AccessOutcome};
use iotlan::apps::{AndroidApi, Permission};
use iotlan::devices::config::HostnameScheme;
use iotlan::inspector::{dataset, entropy, ident};

fn main() {
    // ---- 1. Local-network consent (the iOS model, §2.1/§7) -------------
    println!("== mitigation 1: runtime consent for local-network access ==");
    let unconsented = poc_permissions();
    let consented = {
        let mut p = poc_permissions();
        p.push(Permission::NearbyWifiDevices);
        p
    };
    for (label, permissions, gate_side_channels) in [
        ("Android today (side channel open)", &unconsented, false),
        ("iOS-style consent gate, user declined", &unconsented, true),
        ("consent granted", &consented, false),
    ] {
        let mdns = match (
            evaluate_access(AndroidApi::NsdDiscoverMdns, permissions),
            gate_side_channels,
        ) {
            (_, true) => "BLOCKED (no consent)".to_string(),
            (outcome, false) => format!("{outcome:?}"),
        };
        println!("  {label:<42} mDNS scan: {mdns}");
    }

    // ---- 2. Identifier minimization ------------------------------------
    println!("\n== mitigation 2: strip UUIDs/MACs from discovery payloads ==");
    let baseline = dataset::generate(&dataset::GeneratorConfig::default());
    let mut minimized = baseline.clone();
    for household in &mut minimized.households {
        for device in &mut household.devices {
            for response in device
                .mdns_responses
                .iter_mut()
                .chain(device.ssdp_responses.iter_mut())
            {
                for uuid in ident::extract_uuids(response) {
                    *response = response.replace(&uuid, "00000000-0000-0000-0000-000000000000");
                }
                for mac in ident::extract_mac_candidates(response) {
                    let colon: String = mac
                        .as_bytes()
                        .chunks(2)
                        .map(|c| std::str::from_utf8(c).unwrap())
                        .collect::<Vec<_>>()
                        .join(":");
                    *response = response
                        .replace(&mac, "000000000000")
                        .replace(&colon, "00:00:00:00:00:00");
                }
            }
        }
    }
    for (label, data) in [("as deployed", &baseline), ("minimized", &minimized)] {
        let table = entropy::analyze(data);
        let mut households = 0usize;
        let mut unique = 0.0f64;
        for row in &table.rows {
            if row.class.count() > 0 {
                households += row.households;
                unique += row.unique_fraction * row.households as f64;
            }
        }
        println!(
            "  {label:<12} identifier-exposing households: {households:>5}, \
             uniquely fingerprintable: {:>5.1}%",
            if households == 0 { 0.0 } else { 100.0 * unique / households as f64 }
        );
    }

    // ---- 3. Hostname randomization --------------------------------------
    println!("\n== mitigation 3: randomized DHCP hostnames (GE Microwave) ==");
    let catalog = iotlan::devices::build_testbed();
    let mut trackable = 0;
    let mut randomized = 0;
    for device in &catalog.devices {
        match device.hostname {
            HostnameScheme::Randomized(_) | HostnameScheme::None => randomized += 1,
            _ => trackable += 1,
        }
    }
    println!(
        "  testbed today: {trackable}/93 devices emit a stable DHCP hostname, \
         {randomized} randomize or omit it"
    );
    println!(
        "  with the GE scheme fleet-wide: 0 stable DHCP trackers \
         (each renewal yields a fresh name — see ablation_hostname_scheme)"
    );
}
