//! Trace report: read the run manifests written by the `observability`
//! example (or any `Manifest::write_to` caller) back from
//! `target/manifests/` and print a per-phase timing summary plus the
//! hottest frames of the collapsed flamegraph.
//!
//! ```sh
//! cargo run --release --example observability   # produce the manifests
//! cargo run --release --example trace_report    # summarize them
//! ```
//!
//! An optional argument overrides the manifest directory:
//! `cargo run --example trace_report -- path/to/manifests`.

use iotlan::util::json;
use std::fs;
use std::path::{Path, PathBuf};

fn phase_table(name: &str, value: &json::Value) {
    let Some(phases) = value.get("phases").and_then(|p| p.as_array()) else {
        return;
    };
    if phases.is_empty() {
        return;
    }
    println!("  phases:");
    let mut previous: Option<u64> = None;
    for phase in phases {
        let phase_name = phase
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("<unnamed>");
        match phase.get("sim_micros").and_then(|v| v.as_u64()) {
            Some(sim) => {
                // Phases stamp the simulated clock at their *end*; the
                // delta against the previous phase is the phase's own
                // simulated duration.
                let delta = sim.saturating_sub(previous.unwrap_or(0));
                previous = Some(sim);
                println!(
                    "    {phase_name:<26} sim_end {sim:>14} us   +{delta:>12} us"
                );
            }
            None => println!("    {phase_name:<26} (no simulated clock)"),
        }
    }
    let _ = name;
}

fn summarize_manifest(path: &Path) {
    let Ok(bytes) = fs::read(path) else {
        return;
    };
    let Ok(value) = json::from_slice(&bytes) else {
        println!("{}: unparseable JSON", path.display());
        return;
    };
    let kind = value
        .get("kind")
        .and_then(|k| k.as_str())
        .unwrap_or("<unknown>");
    println!("{} [{kind}]", path.display());
    // Headline counters, if present: every manifest kind carries a few.
    for key in [
        "frames_captured",
        "frames_sent",
        "packets",
        "flow_keys",
        "interactions",
        "devices",
        "analyzed_devices",
        "runs",
        "total_frames",
    ] {
        if let Some(v) = value.get(key).and_then(|v| v.as_u64()) {
            println!("  {key}: {v}");
        }
    }
    if let Some(digests) = value.get("digests").and_then(|d| d.as_object()) {
        for (artifact, digest) in digests.iter() {
            if let Some(hex) = digest.as_str() {
                println!("  digest {artifact}: {hex}");
            }
        }
    }
    phase_table(kind, &value);
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/manifests"));
    let mut manifest_paths: Vec<PathBuf> = match fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(error) => {
            eprintln!(
                "trace_report: cannot read {} ({error}); run the observability example first",
                dir.display()
            );
            std::process::exit(1);
        }
    };
    manifest_paths.sort();
    let mut summarized = 0;
    for path in &manifest_paths {
        // trace.json/flame.json are record streams, not manifests; the
        // kind probe below just prints them as <unknown> — skip instead.
        if path.file_name().is_some_and(|n| n == "trace.json" || n == "flame.json") {
            continue;
        }
        summarize_manifest(path);
        summarized += 1;
    }

    // The hottest self-time frames, from the collapsed stacks.
    if let Ok(collapsed) = fs::read_to_string(dir.join("flame.collapsed")) {
        let mut frames: Vec<(&str, u64)> = collapsed
            .lines()
            .filter_map(|line| {
                let (stack, value) = line.rsplit_once(' ')?;
                Some((stack, value.parse().ok()?))
            })
            .collect();
        frames.sort_by(|a, b| b.1.cmp(&a.1));
        println!("hottest stacks (calls):");
        for (stack, calls) in frames.iter().take(5) {
            println!("  {calls:>12} calls  {stack}");
        }
    }

    if summarized == 0 {
        eprintln!(
            "trace_report: no manifests in {}; run the observability example first",
            dir.display()
        );
        std::process::exit(1);
    }
    println!("trace_report: summarized {summarized} manifests from {}", dir.display());
}
