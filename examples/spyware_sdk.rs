//! The §6.2 SDK case studies, end to end: run the named apps (Lucky Time
//! with innosdk, CNN with AppDynamics, Simple Speedcheck with Umlaut
//! insightCore, plus the IoT companions) on the instrumented phone against
//! the live testbed, and print what each harvested and exfiltrated — and
//! which Android permission side channels made it possible.
//!
//! ```sh
//! cargo run --release --example spyware_sdk
//! ```

use iotlan::apps::{named_apps, AppCensusReport};
use iotlan::netsim::SimDuration;
use iotlan::{Lab, LabConfig};

fn main() {
    let mut lab = Lab::new(LabConfig {
        seed: 7,
        idle_duration: SimDuration::from_secs(30),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();

    let apps = named_apps();
    let names: Vec<String> = apps.iter().map(|a| a.package.clone()).collect();
    lab.deploy_phone(apps);
    let runs = lab.run_app_tests(names.len());

    println!("== per-app instrumentation (AppCensus-style) ==\n");
    for run in &runs {
        println!("app: {}", run.package);
        println!("  LAN protocols: {:?}", {
            let mut p = run.protocols_used.clone();
            p.sort();
            p.dedup();
            p
        });
        for (api, outcome) in &run.api_accesses {
            println!("  api {:?} -> {:?}", api, outcome);
        }
        if run.harvested.is_empty() {
            println!("  harvested: (nothing)");
        }
        for item in run.harvested.iter().take(6) {
            println!(
                "  harvested [{:?}] {} (via {})",
                item.data, item.value, item.source_protocol
            );
        }
        if run.harvested.len() > 6 {
            println!("  … {} more items", run.harvested.len() - 6);
        }
        for record in &run.exfil {
            println!(
                "  exfil {:?} -> {} ({} values{})",
                record.direction,
                record.endpoint,
                record.values.len(),
                record
                    .sdk
                    .map(|s| format!(", via {s}"))
                    .unwrap_or_default()
            );
        }
        println!();
    }

    let report = AppCensusReport::from_runs(&runs);
    println!("== aggregate ==");
    println!(
        "side-channel apps (no dangerous permission, LAN data anyway): {}",
        report.side_channel_apps
    );
    println!("cloud endpoints receiving LAN data:");
    for endpoint in &report.endpoints {
        println!("  {endpoint}");
    }
}
