//! Observability end-to-end: run every instrumented pipeline stage once
//! and write its run manifest — plus the merged trace, the flamegraph and
//! the collapsed stacks — under `target/manifests/`.
//!
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! Everything written here is deterministic (the manifests' host sections
//! and wall-clock stamps are confined to the non-deterministic views), so
//! two runs at any `IOTLAN_THREADS` produce byte-identical files — the
//! contract `tests/telemetry_determinism.rs` pins.

use iotlan::inspector::dataset::{generate, GeneratorConfig};
use iotlan::netsim::SimDuration;
use iotlan::scan::scan_catalog;
use iotlan::stream::engine::stream_capture;
use iotlan::stream::estimate_identifier_space;
use iotlan::telemetry::{self, FlameMetric};
use iotlan::{lab, Lab, LabConfig};
use std::fs;
use std::path::Path;

fn main() {
    telemetry::reset_all();
    let out_dir = Path::new("target/manifests");
    fs::create_dir_all(out_dir).expect("create target/manifests");

    // 1. The instrumented lab: idle capture + scripted interactions.
    let mut lab = Lab::new(LabConfig::fast());
    lab.run_idle();
    lab.run_interactions(SimDuration::from_mins(1));

    // 2. Active scan campaign over the same catalog.
    let scan = scan_catalog(&lab.catalog);
    scan.campaign_manifest()
        .write_to(out_dir.join("scan_campaign.json"))
        .expect("write scan manifest");

    // 3. Honeypot campaign: whatever scanned the decoy during the run.
    if let Some(honeypot) = lab.honeypot() {
        honeypot
            .campaign_manifest()
            .write_to(out_dir.join("honeypot_campaign.json"))
            .expect("write honeypot manifest");
    }

    // 4. One streaming pass over the lab's capture.
    let report = stream_capture(&lab.network.capture, &lab.catalog);
    report
        .manifest(&lab.catalog)
        .write_to(out_dir.join("stream_pass.json"))
        .expect("write stream manifest");

    // 5. Crowd-scale identifier-space estimation on a synthetic dataset.
    let dataset = generate(&GeneratorConfig {
        seed: 0xc0ffee,
        households: 200,
    });
    let estimate = estimate_identifier_space(&dataset, 256, 7);
    estimate
        .manifest(&dataset, 256)
        .write_to(out_dir.join("crowd_estimate.json"))
        .expect("write crowd manifest");

    // 6. The lab's own manifest (phases, frame counts, pcap digest).
    let lab_manifest = lab.finish_manifest();
    lab_manifest
        .write_to(out_dir.join("lab.json"))
        .expect("write lab manifest");

    // 7. A small multi-seed sweep, fanned over the pool — its spans land
    //    in worker lanes and still merge deterministically.
    let base = LabConfig::fast();
    let runs = Lab::run_sweep(&base, &[1, 2, 3]);
    lab::sweep_manifest(&base, &runs)
        .write_to(out_dir.join("sweep.json"))
        .expect("write sweep manifest");

    // 8. Trace, flamegraph, collapsed stacks — all from the same records.
    let records = telemetry::take_records();
    let flame = telemetry::build_flame(&records);
    fs::write(
        out_dir.join("trace.json"),
        format!("{}\n", telemetry::trace_json(&records, true).pretty()),
    )
    .expect("write trace");
    fs::write(
        out_dir.join("flame.json"),
        format!("{}\n", telemetry::flame_json(&flame, true).pretty()),
    )
    .expect("write flamegraph");
    // Calls, not sim time: most spans bracket whole pool tasks or lab
    // phases, which run outside the simulated clock (it is only published
    // inside the event loop), so call counts are the metric every frame
    // actually carries.
    fs::write(
        out_dir.join("flame.collapsed"),
        telemetry::collapsed_stacks(&flame, FlameMetric::Calls),
    )
    .expect("write collapsed stacks");

    println!(
        "observability: {} trace records, {} phases in lab manifest, wrote {}",
        records.len(),
        lab_manifest.phases().len(),
        out_dir.display()
    );
    for phase in lab_manifest.phases() {
        match phase.sim_micros {
            Some(sim) => println!("  phase {:<24} sim {:>12} us", phase.name, sim),
            None => println!("  phase {:<24} sim            -", phase.name),
        }
    }
}
