//! Household fingerprinting (§6.3): generate the crowdsourced-style
//! dataset, run the Table 2 entropy analysis, then play the adversary —
//! re-identify a household from nothing but its mDNS/SSDP identifiers.
//!
//! ```sh
//! cargo run --release --example household_fingerprint
//! ```

use iotlan::inspector::{dataset, entropy, ident};
use std::collections::BTreeSet;

/// The adversary's view of one household: the set of identifier values
/// extracted from its discovery traffic.
fn fingerprint(household: &dataset::Household) -> BTreeSet<String> {
    let mut values = BTreeSet::new();
    for device in &household.devices {
        let text = format!(
            "{} {}",
            device.mdns_responses.join(" "),
            device.ssdp_responses.join(" ")
        );
        for name in ident::extract_names(&text) {
            values.insert(format!("n:{name}"));
        }
        for uuid in ident::extract_uuids(&text) {
            values.insert(format!("u:{uuid}"));
        }
        for mac in ident::extract_macs_with_oui(&text, &device.oui) {
            values.insert(format!("m:{mac}"));
        }
    }
    values
}

fn main() {
    // 1. Generate the dataset (3,893 households, ~13.5k devices).
    let data = dataset::generate(&dataset::GeneratorConfig::default());
    println!(
        "dataset: {} households, {} devices, {} products, {} vendors",
        data.households.len(),
        data.device_count(),
        data.distinct_products(),
        data.distinct_vendors()
    );

    // 2. The Table 2 analysis.
    let table = entropy::analyze(&data);
    println!("\n{}", table.render());

    // 3. The attack: snapshot every household's fingerprint "today"…
    let fingerprints: Vec<BTreeSet<String>> =
        data.households.iter().map(fingerprint).collect();

    // …then pick a target household with identifiers and re-identify it
    // among all 3,893 from its fingerprint alone.
    let (target_index, target_fp) = fingerprints
        .iter()
        .enumerate()
        .find(|(_, fp)| fp.len() >= 2)
        .expect("some household exposes identifiers");
    let matches: Vec<usize> = fingerprints
        .iter()
        .enumerate()
        .filter(|(_, fp)| *fp == target_fp)
        .map(|(i, _)| i)
        .collect();
    println!(
        "adversary re-identification: household #{target_index} \
         (fingerprint of {} identifiers) matches {} household(s) -> {}",
        target_fp.len(),
        matches.len(),
        if matches == vec![target_index] {
            "UNIQUELY identified"
        } else {
            "ambiguous"
        }
    );

    // 4. How much of the population is uniquely pinned down?
    let mut counts = std::collections::BTreeMap::new();
    for fp in &fingerprints {
        if !fp.is_empty() {
            *counts.entry(fp.clone()).or_insert(0usize) += 1;
        }
    }
    let exposed = fingerprints.iter().filter(|fp| !fp.is_empty()).count();
    let unique = fingerprints
        .iter()
        .filter(|fp| !fp.is_empty() && counts[*fp] == 1)
        .count();
    println!(
        "{unique}/{exposed} identifier-exposing households are uniquely \
         fingerprintable ({:.1}%) — the paper reports 94–96% for UUID/MAC rows",
        100.0 * unique as f64 / exposed.max(1) as f64
    );
}
