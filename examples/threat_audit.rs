//! A full §5-style threat audit of the smart home: active scans, nmap
//! service-inference corrections, Nessus-style vulnerability findings, and
//! the Table 1 exposure matrix from live traffic — the report a security
//! auditor would hand the household.
//!
//! ```sh
//! cargo run --release --example threat_audit
//! ```

use iotlan::analysis::exposure;
use iotlan::netsim::SimDuration;
use iotlan::scan::{portscan, service, vuln};
use iotlan::{Lab, LabConfig};

fn main() {
    let mut lab = Lab::new(LabConfig {
        seed: 99,
        idle_duration: SimDuration::from_mins(12),
        interactions: 0,
        with_honeypot: false,
    });

    // --- active scans (§4.2) ---
    let scan = portscan::scan_catalog(&lab.catalog);
    println!("== active scans ==");
    println!(
        "open ports: {} unique TCP, {} unique UDP across {} devices",
        scan.unique_tcp_ports().len(),
        scan.unique_udp_ports().len(),
        scan.devices_with_open_ports()
    );
    println!(
        "responders: TCP {}, UDP {}, IP-proto {}",
        scan.tcp_responders(),
        scan.udp_responders(),
        scan.ip_proto_responders()
    );

    // --- nmap label corrections (§3.5) ---
    println!("\n== nmap service-inference corrections ==");
    let mut shown = 0;
    'outer: for device in &lab.catalog.devices {
        for port in &device.open_tcp {
            let id = service::identify(port.port, false, &port.service);
            if service::was_mislabeled(&id) {
                println!(
                    "{}: port {} nmap says '{}', actually {}",
                    device.name, id.port, id.nmap_label, id.corrected_label
                );
                shown += 1;
                if shown >= 8 {
                    break 'outer;
                }
            }
        }
    }

    // --- vulnerability findings (§5.2) ---
    println!("\n== vulnerability findings ==");
    let findings = vuln::scan_catalog_vulns(&lab.catalog);
    let mut by_severity = std::collections::BTreeMap::new();
    for (_, device_findings) in &findings {
        for finding in device_findings {
            *by_severity.entry(finding.severity).or_insert(0usize) += 1;
        }
    }
    for (severity, count) in by_severity.iter().rev() {
        println!("{severity:?}: {count}");
    }
    println!("\nhigh-severity highlights:");
    for (device, device_findings) in &findings {
        for finding in device_findings {
            if finding.severity >= vuln::Severity::High {
                println!(
                    "  {device}: {} {}",
                    finding.cve.unwrap_or("-"),
                    finding.description
                );
            }
        }
    }

    // --- live exposure matrix (Table 1) ---
    lab.run_idle();
    let matrix = exposure::exposure_matrix(&lab.flow_table());
    println!("\n== information exposure observed on the wire (Table 1) ==");
    println!("{}", matrix.render());
}
