//! Quickstart: assemble the 93-device testbed, capture traffic at the AP,
//! classify it, and export a Wireshark-compatible pcap.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iotlan::classify::rules::{classify_with_rules, paper_rules};
use iotlan::netsim::SimDuration;
use iotlan::{Lab, LabConfig};
use std::collections::BTreeMap;

fn main() {
    // 1. Build the lab: router + 93 devices (Table 3) + honeypot.
    let mut lab = Lab::new(LabConfig {
        seed: 42,
        idle_duration: SimDuration::from_mins(15),
        interactions: 50,
        with_honeypot: true,
    });
    println!(
        "testbed: {} devices, {} unique models",
        lab.catalog.devices.len(),
        lab.catalog.unique_models()
    );

    // 2. Run the idle capture and some scripted interactions.
    lab.run_idle();
    lab.run_interactions(SimDuration::from_mins(2));
    println!(
        "captured {} frames over {}",
        lab.network.capture.len(),
        lab.network.now()
    );

    // 3. Assemble flows and classify with the paper's pipeline
    //    (nDPI model + manual rules).
    let table = lab.flow_table();
    let rules = paper_rules();
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    for flow in &table.flows {
        *counts.entry(classify_with_rules(flow, &rules)).or_insert(0) += flow.packets;
    }
    println!("\ntop protocols by packets:");
    let mut rows: Vec<_> = counts.into_iter().collect();
    rows.sort_by_key(|(_, packets)| std::cmp::Reverse(*packets));
    for (protocol, packets) in rows.iter().take(12) {
        println!("  {protocol:<14} {packets}");
    }

    // 4. Who scanned the honeypot?
    if let Some(honeypot) = lab.honeypot() {
        println!("\nhoneypot interactions: {}", honeypot.interactions.len());
        for protocol in [
            iotlan::honeypot::HoneypotProtocol::Ssdp,
            iotlan::honeypot::HoneypotProtocol::Mdns,
        ] {
            let scanners = honeypot.scanners(protocol);
            println!("  {protocol:?} scanners: {}", scanners.len());
        }
    }

    // 5. Export the capture for Wireshark.
    let pcap = lab.network.capture.to_pcap();
    let path = std::env::temp_dir().join("iotlan_quickstart.pcap");
    std::fs::write(&path, pcap).expect("write pcap");
    println!("\npcap written to {}", path.display());

    // Per-MAC split, like the paper's per-device capture files.
    let echo = lab.catalog.find("Amazon Echo Spot").unwrap();
    let echo_pcap = lab.network.capture.to_pcap_for_mac(echo.mac);
    let echo_path = std::env::temp_dir().join("iotlan_echo_spot.pcap");
    std::fs::write(&echo_path, echo_pcap).expect("write pcap");
    println!("Echo Spot per-device pcap: {}", echo_path.display());
}
