#!/usr/bin/env sh
# Performance-bench trajectory recorder.
#
#   ./scripts/bench_perf.sh [--quick]
#
# Runs the four perf benches — perf_netsim, perf_stream, perf_wire,
# perf_frames — and appends every machine-readable
# {"type":"throughput",...} and {"type":"speedup",...} JSON line they emit
# to BENCH_perf.json (one JSON object per line, append-only), so the
# repo carries its own performance trajectory across commits. The
# per-benchmark {"type":"bench",...} medians are printed but not recorded:
# the trajectory tracks end-to-end rates, not harness samples.
#
# Pass --quick to forward the benches' quick mode (smaller workloads, fewer
# reps) — used by scripts/verify.sh as a smoke test.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_perf.json"
quick="${1:-}"

run_bench() {
    name="$1"
    echo "==> cargo bench -p iotlan-bench --bench $name --offline -- $quick"
    # shellcheck disable=SC2086  # $quick is intentionally word-split ('' or --quick)
    bench_out=$(cargo bench -p iotlan-bench --bench "$name" --offline -- $quick)
    printf '%s\n' "$bench_out"
    printf '%s\n' "$bench_out" | grep -E '^\{"type":"(throughput|speedup)"' >>"$out" || true
}

run_bench perf_netsim
run_bench perf_stream
run_bench perf_wire
run_bench perf_frames

lines=$(grep -cE '^\{"type":"(throughput|speedup)"' "$out")
echo "bench_perf: $out now holds $lines trajectory lines"
