#!/usr/bin/env sh
# Performance-bench trajectory recorder.
#
#   ./scripts/bench_perf.sh [--quick]
#
# Runs the five perf benches — perf_netsim, perf_stream, perf_wire,
# perf_frames, perf_telemetry — and appends every machine-readable
# {"type":"throughput",...}, {"type":"speedup",...} and
# {"type":"overhead",...} JSON line they emit to BENCH_perf.json (one JSON
# object per line, append-only), so the repo carries its own performance
# trajectory across commits — including the telemetry layer's
# enabled-vs-disabled overhead claim. The
# per-benchmark {"type":"bench",...} medians are printed but not recorded:
# the trajectory tracks end-to-end rates, not harness samples.
#
# Pass --quick to forward the benches' quick mode (smaller workloads, fewer
# reps) — used by scripts/verify.sh as a smoke test.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_perf.json"
quick="${1:-}"

run_bench() {
    name="$1"
    echo "==> cargo bench -p iotlan-bench --bench $name --offline -- $quick"
    # shellcheck disable=SC2086  # $quick is intentionally word-split ('' or --quick)
    bench_out=$(cargo bench -p iotlan-bench --bench "$name" --offline -- $quick)
    printf '%s\n' "$bench_out"
    printf '%s\n' "$bench_out" | grep -E '^\{"type":"(throughput|speedup|overhead)"' >>"$out" || true
}

run_bench perf_netsim
run_bench perf_stream
run_bench perf_wire
run_bench perf_frames
run_bench perf_telemetry

lines=$(grep -cE '^\{"type":"(throughput|speedup|overhead)"' "$out")
echo "bench_perf: $out now holds $lines trajectory lines"
