#!/usr/bin/env sh
# Per-phase timing summary from run manifests.
#
#   ./scripts/trace_report.sh [manifest-dir]
#
# Summarizes every run manifest under target/manifests/ (or the given
# directory): kind, headline counters, content digests, and the per-phase
# simulated-clock table — plus the hottest frames of the collapsed
# flamegraph. If the directory does not exist yet, the observability
# example is run first to produce it.
set -eu

cd "$(dirname "$0")/.."

dir="${1:-target/manifests}"

if [ ! -d "$dir" ]; then
    echo "trace_report: $dir missing — running the observability example to produce it"
    cargo run -q --release --offline --example observability
fi

cargo run -q --release --offline --example trace_report -- "$dir"
