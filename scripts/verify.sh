#!/usr/bin/env sh
# Tier-1 verification gate. Must pass from a clean checkout with no network:
# the workspace is hermetic (zero crates.io dependencies), so everything runs
# with --offline.
#
#   ./scripts/verify.sh
#
# 1. release build of the whole workspace
# 2. full test suite (unit + property + integration), serial
#    (IOTLAN_THREADS=1) and parallel (IOTLAN_THREADS=4) — the pool promises
#    bit-identical artifacts at any worker count, so both must pass
# 3. paper-scale integration tests: the suites marked #[ignore] (too slow
#    for the default tier-1 wall clock) run here explicitly
# 4. streaming equivalence: tests/stream_equivalence.rs pinned to 1 and 4
#    worker threads — the stream engine must match batch at both
# 5. bench smoke: perf_wire in --quick mode must emit machine-readable
#    {"type":"bench",...} JSON lines via the in-tree harness
# 6. sweep smoke: perf_sweep in --quick mode must emit its
#    {"type":"speedup",...} serial-vs-parallel comparison lines
# 7. stream smoke: perf_stream in --quick mode must emit its
#    {"type":"throughput",...} packet-rate / peak-state lines
# 8. frame-pipeline smoke: perf_frames in --quick mode must emit its
#    {"type":"speedup",...} legacy-vs-zero-copy comparison line
# 9. telemetry smoke: perf_telemetry in --quick mode must emit its
#    {"type":"overhead",...} enabled-vs-disabled comparison lines
# 10. observability: the observability example must write run manifests
#     under target/manifests/, and scripts/trace_report.sh must render the
#     per-phase timing summary from them
# 11. mojibake guard: no U+FFFD replacement characters anywhere in the
#     tracked tree (a mangled-encoding canary)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (IOTLAN_THREADS=1)"
IOTLAN_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline --workspace (IOTLAN_THREADS=4)"
IOTLAN_THREADS=4 cargo test -q --offline --workspace

echo "==> paper-scale suites (cargo test -- --ignored)"
IOTLAN_THREADS=4 cargo test -q --offline -- --ignored

echo "==> streaming equivalence (IOTLAN_THREADS=1)"
IOTLAN_THREADS=1 cargo test -q --offline --test stream_equivalence

echo "==> streaming equivalence (IOTLAN_THREADS=4)"
IOTLAN_THREADS=4 cargo test -q --offline --test stream_equivalence

echo "==> bench smoke: perf_wire --quick"
bench_out=$(cargo bench -p iotlan-bench --bench perf_wire --offline -- --quick)
printf '%s\n' "$bench_out"
if ! printf '%s\n' "$bench_out" | grep -q '^{"type":"bench"'; then
    echo "verify: FAIL — perf_wire emitted no bench JSON lines" >&2
    exit 1
fi

echo "==> sweep smoke: perf_sweep --quick"
sweep_out=$(cargo bench -p iotlan-bench --bench perf_sweep --offline -- --quick)
printf '%s\n' "$sweep_out"
if ! printf '%s\n' "$sweep_out" | grep -q '^{"type":"speedup"'; then
    echo "verify: FAIL — perf_sweep emitted no speedup JSON lines" >&2
    exit 1
fi

echo "==> stream smoke: perf_stream --quick"
stream_out=$(cargo bench -p iotlan-bench --bench perf_stream --offline -- --quick)
printf '%s\n' "$stream_out"
if ! printf '%s\n' "$stream_out" | grep -q '^{"type":"throughput"'; then
    echo "verify: FAIL — perf_stream emitted no throughput JSON lines" >&2
    exit 1
fi

echo "==> frame-pipeline smoke: perf_frames --quick"
frames_out=$(cargo bench -p iotlan-bench --bench perf_frames --offline -- --quick)
printf '%s\n' "$frames_out"
if ! printf '%s\n' "$frames_out" | grep -q '^{"type":"speedup"'; then
    echo "verify: FAIL — perf_frames emitted no speedup JSON lines" >&2
    exit 1
fi

echo "==> telemetry smoke: perf_telemetry --quick"
telemetry_out=$(cargo bench -p iotlan-bench --bench perf_telemetry --offline -- --quick)
printf '%s\n' "$telemetry_out"
if ! printf '%s\n' "$telemetry_out" | grep -q '^{"type":"overhead"'; then
    echo "verify: FAIL — perf_telemetry emitted no overhead JSON lines" >&2
    exit 1
fi

echo "==> observability manifests + per-phase timing summary"
cargo run -q --release --offline --example observability
if [ ! -f target/manifests/lab.json ]; then
    echo "verify: FAIL — observability example wrote no lab manifest" >&2
    exit 1
fi
./scripts/trace_report.sh

echo "==> mojibake guard (U+FFFD)"
if grep -rIl "$(printf '\357\277\275')" --exclude-dir=target --exclude-dir=.git . ; then
    echo "verify: FAIL — U+FFFD replacement characters found in the tree" >&2
    exit 1
fi

echo "verify: OK"
