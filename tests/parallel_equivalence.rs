//! Serial/parallel equivalence: every parallelized pipeline stage must be
//! a pure function of its inputs, never of the worker count.
//!
//! Each test computes the same artifact under `IOTLAN_THREADS` pinned to
//! 1 (the serial reference), 2 and 8, and asserts *byte* identity — full
//! datasets, rendered reports, merged pcap images. Any scheduling leak
//! (unordered reduction, chunking that moves with thread count, a worker
//! drawing from a shared RNG) fails these before it can corrupt a
//! paper-vs-measured comparison.

use iotlan::classify::crossval;
use iotlan::inspector::{dataset, entropy, infer};
use iotlan::netsim::SimDuration;
use iotlan::{experiments, merge_sweep_captures, Lab, LabConfig};
use iotlan_util::pool;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run `build` once per thread count and assert all results equal the
/// serial (1-thread) reference.
fn assert_thread_count_invariant<R: PartialEq + std::fmt::Debug>(
    what: &str,
    build: impl Fn() -> R,
) {
    let reference = pool::with_threads(THREAD_COUNTS[0], &build);
    for threads in &THREAD_COUNTS[1..] {
        let result = pool::with_threads(*threads, &build);
        assert!(
            result == reference,
            "{what}: IOTLAN_THREADS={threads} diverged from the serial reference"
        );
    }
}

#[test]
fn dataset_generation_is_thread_count_invariant() {
    assert_thread_count_invariant("inspector::dataset::generate", || {
        dataset::generate(&dataset::GeneratorConfig {
            seed: 0xd5,
            households: 600,
        })
    });
}

#[test]
fn entropy_and_inference_reports_are_thread_count_invariant() {
    let data = dataset::generate(&dataset::GeneratorConfig {
        seed: 0xe7,
        households: 500,
    });
    assert_thread_count_invariant("inspector::entropy::analyze", || {
        entropy::analyze(&data).render()
    });
    assert_thread_count_invariant("inspector::infer::score", || {
        let (vendor, category, coverage) = infer::score(&data);
        format!("{vendor:.12}|{category:.12}|{coverage:.12}")
    });
}

#[test]
fn crossval_is_thread_count_invariant() {
    let mut lab = Lab::new(LabConfig {
        seed: 77,
        idle_duration: SimDuration::from_mins(3),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();
    let table = lab.flow_table();
    assert_thread_count_invariant("classify::cross_validate", || {
        let cv = crossval::cross_validate(&table);
        format!(
            "{}\n{:?}\n{}",
            cv.matrix.render(),
            cv.agreement,
            crossval::ssdp_share_of_disagreements(&table)
        )
    });
    assert_thread_count_invariant("classify::cross_validate_folds", || {
        crossval::cross_validate_folds(&table, 4)
            .iter()
            .map(|fold| format!("{}|{:?}\n", fold.matrix.render(), fold.agreement))
            .collect::<String>()
    });
}

#[test]
fn sweep_pcaps_are_thread_count_invariant() {
    let base = LabConfig {
        seed: 0,
        idle_duration: SimDuration::from_mins(1),
        interactions: 5,
        with_honeypot: false,
    };
    let seeds = [11u64, 12, 13, 14];
    assert_thread_count_invariant("Lab::run_sweep merged pcap", || {
        let runs = Lab::run_sweep(&base, &seeds);
        let per_run: Vec<(u64, usize, Vec<u8>)> = runs
            .iter()
            .map(|run| (run.seed, run.flow_count, run.capture.to_pcap()))
            .collect();
        let merged = merge_sweep_captures(&runs).to_pcap();
        (per_run, merged)
    });
}

#[test]
#[ignore = "runs the full report stack at three thread counts; run via scripts/verify.sh"]
fn full_report_pipeline_is_thread_count_invariant() {
    // The determinism suite's report stack, compared across worker counts
    // rather than across runs: dataset-backed Table 2 plus the
    // capture-backed figure set.
    assert_thread_count_invariant("experiments report stack", || {
        let mut lab = Lab::new(LabConfig {
            seed: 424,
            idle_duration: SimDuration::from_mins(2),
            interactions: 10,
            with_honeypot: true,
        });
        lab.run_idle();
        lab.run_interactions(SimDuration::from_mins(1));
        let mut report = String::new();
        report.push_str(&experiments::fig3_crossval(&lab).render());
        report.push_str(&experiments::table2_entropy(424).render());
        (lab.network.capture.to_pcap(), report)
    });
}
