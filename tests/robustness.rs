//! Robustness integration tests: the pipeline under adverse conditions —
//! fault injection on the medium, corrupted captures, and hostile inputs.

use iotlan::classify::rules::{classify_with_rules, paper_rules};
use iotlan::classify::FlowTable;
use iotlan::netsim::{FaultInjector, SimDuration};
use iotlan::{experiments, Lab, LabConfig};

/// The smoltcp-style fault injection: 15% drop + 15% corrupt. Devices,
/// capture, flow assembly and classification must all survive; corrupted
/// frames become unclassified, never panics.
#[test]
fn pipeline_survives_faulty_medium() {
    let mut lab = Lab::new(LabConfig {
        seed: 51,
        idle_duration: SimDuration::from_mins(6),
        interactions: 10,
        with_honeypot: true,
    });
    lab.network.faults = FaultInjector::new(0.15, 0.15, None, 7);
    lab.run_idle();
    lab.run_interactions(SimDuration::from_secs(30));
    assert!(lab.network.faults.dropped() > 0, "faults must fire");
    assert!(lab.network.faults.corrupted() > 0);

    // The whole analysis stack still runs.
    let table = lab.flow_table();
    assert!(!table.is_empty());
    let rules = paper_rules();
    let labeled = table
        .flows
        .iter()
        .filter(|f| classify_with_rules(f, &rules) != "UNKNOWN")
        .count();
    assert!(labeled > table.len() / 2, "{labeled}/{}", table.len());
    let _ = experiments::fig1_device_graph(&lab);
    let _ = experiments::table1_exposure(&lab);
    let _ = experiments::appd1_periodicity(&lab);
}

/// Heavy loss: devices keep functioning (retrying discovery), the capture
/// still records transmissions (the AP sees pre-drop frames).
#[test]
fn heavy_loss_does_not_wedge_devices() {
    let mut lab = Lab::new(LabConfig {
        seed: 52,
        idle_duration: SimDuration::from_mins(4),
        interactions: 0,
        with_honeypot: false,
    });
    lab.network.faults = FaultInjector::new(0.6, 0.0, None, 3);
    lab.run_idle();
    // Frames were sent even though most were dropped in flight.
    assert!(lab.network.frames_sent() > 300);
    assert_eq!(lab.network.capture.len() as u64, lab.network.frames_sent());
}

/// A capture whose bytes are randomly mangled after the fact (disk
/// corruption / hostile pcap) parses without panicking.
#[test]
fn mangled_capture_never_panics() {
    let mut lab = Lab::new(LabConfig {
        seed: 53,
        idle_duration: SimDuration::from_mins(2),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();
    let mut frames: Vec<Vec<u8>> = lab
        .network
        .capture
        .frames()
        .map(|f| f.data().to_vec())
        .collect();
    // Deterministic mangling: flip a byte in every 3rd frame, truncate
    // every 5th.
    for (index, frame) in frames.iter_mut().enumerate() {
        if index % 3 == 0 && !frame.is_empty() {
            let position = (index * 7919) % frame.len();
            frame[position] ^= 0xff;
        }
        if index % 5 == 0 {
            let keep = frame.len() / 2;
            frame.truncate(keep);
        }
    }
    let mut table = FlowTable::default();
    for (index, frame) in frames.iter().enumerate() {
        table.add_frame(iotlan::netsim::SimTime::from_secs(index as u64), frame);
    }
    // Classification of whatever survived must not panic.
    let rules = paper_rules();
    for flow in &table.flows {
        let _ = classify_with_rules(flow, &rules);
        let _ = iotlan::classify::truth::label_flow(flow);
        let _ = iotlan::classify::tshark::classify(flow);
    }
}

/// Size-limited medium (tiny MTU fault): oversized frames dropped, small
/// control traffic still flows.
#[test]
fn size_limit_partitions_traffic() {
    let mut lab = Lab::new(LabConfig {
        seed: 54,
        idle_duration: SimDuration::from_mins(3),
        interactions: 0,
        with_honeypot: false,
    });
    lab.network.faults = FaultInjector::new(0.0, 0.0, Some(120), 1);
    lab.run_idle();
    // ARP (42+14 bytes) passes; large mDNS answers are dropped, so devices
    // never hear each other's announcements — but nothing crashes and the
    // capture still shows the transmissions.
    assert!(lab.network.faults.dropped() > 0);
    let table = lab.flow_table();
    assert!(table.flows.iter().any(|f| {
        matches!(f.key.transport, iotlan::classify::flow::Transport::L2(0x0806))
    }));
}
