//! Threat-model integration tests: the §2/§5/§6 attacks executed end to
//! end on the simulated LAN.

use iotlan::apps::{AppBehavior, AppCategory, AppConfig, DataType, SdkKind};
use iotlan::honeypot::{CanaryKind, CanaryTracker};
use iotlan::netsim::stack::{self, Content, Endpoint};
use iotlan::netsim::SimDuration;
use iotlan::wire::ethernet::EthernetAddress;
use iotlan::wire::{tcp, tplink};
use iotlan::{Lab, LabConfig};
use std::net::Ipv4Addr;

/// §5.1: "a local attacker could control TP-Link devices via this protocol
/// without authentication" — executed live.
#[test]
fn unauthenticated_tplink_control() {
    let mut lab = Lab::new(LabConfig {
        seed: 31,
        idle_duration: SimDuration::from_secs(10),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();
    let plug = lab.catalog.find("TP-Link Smart Plug").unwrap().clone();
    let attacker = Endpoint {
        mac: EthernetAddress([0x02, 0xa7, 0x7a, 0xc2, 0x00, 0x01]),
        ip: Ipv4Addr::new(192, 168, 10, 249),
    };
    let target = Endpoint {
        mac: plug.mac,
        ip: plug.ip,
    };
    // No pairing, no credentials: just a TCP data segment with the command.
    let command = tplink::Message::set_relay_state(true).to_tcp_bytes();
    lab.network.inject_frame(stack::tcp_segment(
        attacker,
        target,
        &tcp::Repr::data(45555, 9999, 1, 0x2001, command.len()),
        &command,
    ));
    lab.network.run_for(SimDuration::from_secs(2));
    // The plug obeyed: err_code 0 came back to the attacker.
    let obeyed = lab.network.capture.frames().any(|frame| {
        frame.src_mac() == plug.mac
            && match stack::dissect(frame.data()).map(|d| d.content) {
                Some(Content::TcpV4 { payload, .. }) if !payload.is_empty() => {
                    tplink::Message::from_tcp_bytes(payload)
                        .map(|m| {
                            m.body["system"]["set_relay_state"]["err_code"]
                                == iotlan::wire::JsonValue::from(0)
                        })
                        .unwrap_or(false)
                }
                _ => false,
            }
    });
    assert!(obeyed, "plug must accept unauthenticated control");
}

/// §2.1 PoC: an app holding only non-dangerous permissions enumerates the
/// LAN via mDNS/SSDP while the official SSID API stays denied.
#[test]
fn permission_bypass_poc() {
    let mut lab = Lab::new(LabConfig {
        seed: 32,
        idle_duration: SimDuration::from_secs(20),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();
    let poc = AppConfig {
        package: "edu.poc.localscan".into(),
        category: AppCategory::Regular,
        permissions: iotlan::apps::android::poc_permissions(),
        behaviors: vec![
            AppBehavior::MdnsScan(vec!["_services._dns-sd._udp.local".into()]),
            AppBehavior::SsdpScan(vec!["ssdp:all".into()]),
        ],
        sdks: vec![],
    };
    lab.deploy_phone(vec![poc]);
    let runs = lab.run_app_tests(1);
    let run = &runs[0];
    // Discovered devices without any dangerous permission:
    let device_macs: std::collections::BTreeSet<&str> = run
        .harvested
        .iter()
        .filter(|h| h.data == DataType::DeviceMac)
        .map(|h| h.value.as_str())
        .collect();
    assert!(
        device_macs.len() >= 5,
        "PoC discovered only {} devices",
        device_macs.len()
    );
    // …and every LAN access was a side channel, with the official API path
    // denied.
    use iotlan::apps::android::AccessOutcome;
    use iotlan::apps::AndroidApi;
    assert!(run
        .api_accesses
        .iter()
        .any(|(api, o)| *api == AndroidApi::NsdDiscoverMdns && *o == AccessOutcome::SideChannel));
    assert!(run
        .api_accesses
        .iter()
        .all(|(api, o)| *api != AndroidApi::GetSsid || *o == AccessOutcome::Denied));
}

/// §3.1 honeypots + §6.2 SDKs: a canary identifier planted by the honeypot
/// is harvested by a scanning app and shows up in its exfiltration payloads
/// — information propagation proven end to end.
#[test]
fn canary_propagates_from_honeypot_to_cloud() {
    let mut lab = Lab::new(LabConfig {
        seed: 33,
        idle_duration: SimDuration::from_secs(10),
        interactions: 0,
        with_honeypot: true,
    });
    lab.run_idle();
    let tracker = CanaryTracker::for_honeypot(lab.honeypot().unwrap());

    // The CNN-style app: SSDP scan + AppDynamics SDK.
    let app = AppConfig {
        package: "com.cnn.mobile.android.phone".into(),
        category: AppCategory::Regular,
        permissions: iotlan::apps::android::poc_permissions(),
        behaviors: vec![AppBehavior::SsdpScan(vec!["ssdp:all".into()])],
        sdks: vec![SdkKind::AppDynamics],
    };
    lab.deploy_phone(vec![app]);
    let runs = lab.run_app_tests(1);
    let run = &runs[0];

    // The canary UUID crossed: honeypot → SSDP response → app harvest →
    // AppDynamics payload.
    let exfil_text: String = run
        .exfil
        .iter()
        .flat_map(|record| record.values.iter().map(|(_, v)| v.clone()))
        .collect::<Vec<_>>()
        .join(" ");
    let hits = tracker.scan_text("appdynamics-exfil", &exfil_text);
    assert!(
        hits.iter().any(|h| h.which == CanaryKind::Uuid),
        "canary must appear in exfiltration; exfil was: {exfil_text}"
    );
    // And the endpoint is the AppDynamics beacon.
    assert!(run
        .exfil
        .iter()
        .any(|r| r.endpoint.contains("events.claspws.tv")));
}

/// §6.2 innosdk: the NetBIOS sweep reaches the honeypot and is logged as a
/// UDP probe (the paper's "sends a UDP datagram to every IP … regardless of
/// whether there was a machine assigned").
#[test]
fn innosdk_sweep_hits_honeypot() {
    let mut lab = Lab::new(LabConfig {
        seed: 34,
        idle_duration: SimDuration::from_secs(5),
        interactions: 0,
        with_honeypot: true,
    });
    lab.run_idle();
    let app = AppConfig {
        package: "com.luckyapp.winner".into(),
        category: AppCategory::Regular,
        permissions: iotlan::apps::android::poc_permissions(),
        behaviors: vec![AppBehavior::NetBiosScan],
        sdks: vec![SdkKind::InnoSdk],
    };
    lab.deploy_phone(vec![app]);
    lab.run_app_tests(1);
    let honeypot = lab.honeypot().unwrap();
    let phone_mac = EthernetAddress([0x02, 0x91, 0x0e, 0x00, 0x00, 0x01]);
    let udp_probes = honeypot.scanners(iotlan::honeypot::HoneypotProtocol::UdpProbe);
    assert!(
        udp_probes.contains(&phone_mac),
        "the honeypot must log the innosdk NetBIOS sweep"
    );
}

/// §6.1: co-located-device data reaches the cloud — the Alexa-style app
/// relays the MAC of an *unpaired* device (the Meross pattern).
#[test]
fn unpaired_device_mac_exfiltrated() {
    let mut lab = Lab::new(LabConfig {
        seed: 35,
        idle_duration: SimDuration::from_secs(20),
        interactions: 0,
        with_honeypot: false,
    });
    lab.run_idle();
    let meross = lab.catalog.find("Meross Smart Plug A").unwrap().clone();
    let app = AppConfig {
        package: "com.amazon.dee.app".into(),
        category: AppCategory::Iot,
        permissions: iotlan::apps::android::poc_permissions(),
        behaviors: vec![AppBehavior::MdnsScan(vec![
            "_meross-mqtt._tcp.local".into(), // not an Amazon service
        ])],
        sdks: vec![SdkKind::Amplitude],
    };
    lab.deploy_phone(vec![app]);
    let runs = lab.run_app_tests(1);
    let run = &runs[0];
    let exfil_text: String = run
        .exfil
        .iter()
        .filter(|r| r.endpoint.contains("amplitude"))
        .flat_map(|r| r.values.iter().map(|(_, v)| v.clone()))
        .collect::<Vec<_>>()
        .join(" ");
    assert!(
        exfil_text.contains(&meross.mac.to_string()),
        "the never-paired Meross plug's MAC must reach Amplitude; got {exfil_text}"
    );
}
