//! The observability determinism contract (acceptance gate for the
//! telemetry layer): traces, metric snapshots and run manifests — in their
//! deterministic views — are **byte-identical** across `IOTLAN_THREADS`
//! settings and across repeated same-seed runs.
//!
//! This is what makes the telemetry trustworthy as a debugging instrument:
//! if a parallel run's trace differed from the serial run's, "diff the
//! traces" could never distinguish a real behavioural divergence from
//! scheduling noise. Host-volatile facts (wall clocks, worker busy time,
//! allocation counts) are confined to the manifests' `"host"` section and
//! the full (non-deterministic) trace view, which are deliberately NOT
//! compared here.
//!
//! Telemetry state is process-global, so every test serializes on
//! `telemetry::test_guard()`.

use iotlan::inspector::dataset::{generate, GeneratorConfig};
use iotlan::netsim::SimDuration;
use iotlan::scan::scan_catalog;
use iotlan::stream::engine::stream_capture;
use iotlan::stream::estimate_identifier_space;
use iotlan::util::pool;
use iotlan::{lab, telemetry, Lab, LabConfig};

fn lab_config() -> LabConfig {
    LabConfig {
        seed: 1312,
        idle_duration: SimDuration::from_mins(2),
        interactions: 10,
        with_honeypot: true,
    }
}

/// Every deterministic artifact the instrumented pipeline emits, rendered
/// to comparable strings. One call runs the whole stack: lab phases,
/// active scan, honeypot campaign, streaming pass, crowd estimation and a
/// pool-fanned sweep (whose spans land in worker lanes).
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    trace: String,
    flame: String,
    metrics: String,
    lab_manifest: String,
    sweep_manifest: String,
    stream_manifest: String,
    scan_manifest: String,
    honeypot_manifest: String,
    crowd_manifest: String,
}

fn pipeline_artifacts() -> Artifacts {
    telemetry::reset_all();

    let mut lab = Lab::new(lab_config());
    lab.run_idle();
    lab.run_interactions(SimDuration::from_mins(1));

    let scan = scan_catalog(&lab.catalog);
    let scan_manifest = scan.campaign_manifest().deterministic_json().pretty();
    let honeypot_manifest = lab
        .honeypot()
        .expect("config deploys the honeypot")
        .campaign_manifest()
        .deterministic_json()
        .pretty();

    let report = stream_capture(&lab.network.capture, &lab.catalog);
    let stream_manifest = report.manifest(&lab.catalog).deterministic_json().pretty();

    let dataset = generate(&GeneratorConfig {
        seed: 0xc0ffee,
        households: 100,
    });
    let estimate = estimate_identifier_space(&dataset, 128, 7);
    let crowd_manifest = estimate.manifest(&dataset, 128).deterministic_json().pretty();

    // Sweep with interactions disabled: two extra idle labs fanned over
    // the pool give worker-lane trace coverage without doubling runtime.
    let sweep_base = LabConfig {
        interactions: 0,
        ..lab_config()
    };
    let runs = Lab::run_sweep(&sweep_base, &[7, 8]);
    let sweep_manifest = lab::sweep_manifest(&sweep_base, &runs)
        .deterministic_json()
        .pretty();

    let lab_manifest = lab.finish_manifest().deterministic_json().pretty();

    let records = telemetry::take_records();
    let trace = telemetry::trace_json(&records, true).pretty();
    let flame = telemetry::flame_json(&telemetry::build_flame(&records), true).pretty();
    let metrics = telemetry::snapshot().pretty();

    Artifacts {
        trace,
        flame,
        metrics,
        lab_manifest,
        sweep_manifest,
        stream_manifest,
        scan_manifest,
        honeypot_manifest,
        crowd_manifest,
    }
}

#[test]
fn artifacts_byte_identical_across_thread_counts() {
    let _guard = telemetry::test_guard();
    let reference = pool::with_threads(1, pipeline_artifacts);
    for threads in [2usize, 8] {
        let parallel = pool::with_threads(threads, pipeline_artifacts);
        assert_eq!(
            reference.trace, parallel.trace,
            "deterministic trace diverged at {threads} threads"
        );
        assert_eq!(
            reference.flame, parallel.flame,
            "flamegraph diverged at {threads} threads"
        );
        assert_eq!(
            reference.metrics, parallel.metrics,
            "metric snapshot diverged at {threads} threads"
        );
        assert_eq!(reference, parallel, "some artifact diverged at {threads} threads");
    }
}

#[test]
fn artifacts_byte_identical_across_repeated_runs() {
    let _guard = telemetry::test_guard();
    let first = pool::with_threads(2, pipeline_artifacts);
    let second = pool::with_threads(2, pipeline_artifacts);
    assert_eq!(first, second, "same-seed artifacts diverged run-to-run");
}

#[test]
fn artifacts_carry_the_instrumentation() {
    let _guard = telemetry::test_guard();
    let artifacts = pool::with_threads(2, pipeline_artifacts);

    // The trace saw real spans, including worker-lane sweep spans.
    assert!(artifacts.trace.contains("lab.idle"));
    assert!(artifacts.trace.contains("lab.sweep_run"));
    assert!(artifacts.flame.contains("lab.build"));

    // The metric snapshot covers every instrumented layer.
    for metric in [
        "netsim.frames_sent",
        "netsim.frames_delivered",
        "devices.mdns_queries",
        "lab.sweep_runs",
        "stream.packets",
        "stream.flow_keys_created",
        "scan.devices_scanned",
        "honeypot.interactions",
        "crowd.households",
    ] {
        assert!(
            artifacts.metrics.contains(metric),
            "metrics snapshot is missing {metric}:\n{}",
            artifacts.metrics
        );
    }

    // Manifests carry their kinds, phases and content digests.
    assert!(artifacts.lab_manifest.contains("\"kind\": \"lab\""));
    assert!(artifacts.lab_manifest.contains("\"idle\""));
    assert!(artifacts.lab_manifest.contains("capture.pcap"));
    assert!(artifacts.sweep_manifest.contains("\"kind\": \"sweep\""));
    assert!(artifacts.stream_manifest.contains("\"kind\": \"stream_pass\""));
    assert!(artifacts.scan_manifest.contains("\"kind\": \"scan_campaign\""));
    assert!(artifacts.honeypot_manifest.contains("\"kind\": \"honeypot_campaign\""));
    assert!(artifacts.crowd_manifest.contains("\"kind\": \"crowd_estimate\""));

    // And none of the deterministic views leak host-volatile facts.
    for rendered in [
        &artifacts.lab_manifest,
        &artifacts.sweep_manifest,
        &artifacts.stream_manifest,
        &artifacts.scan_manifest,
        &artifacts.honeypot_manifest,
        &artifacts.crowd_manifest,
        &artifacts.trace,
        &artifacts.flame,
    ] {
        assert!(!rendered.contains("\"host\""), "host section leaked");
        assert!(!rendered.contains("wall_nanos"), "wall stamps leaked");
    }
}
