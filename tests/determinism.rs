//! Regression: the whole pipeline is a pure function of the Lab seed.
//!
//! Two labs built from the same `LabConfig` must produce a byte-identical
//! pcap image AND identical rendered reports — any hidden nondeterminism
//! (map iteration order, time-of-day, an unseeded RNG draw) shows up here
//! before it can corrupt a paper-vs-measured comparison.

use iotlan::experiments;
use iotlan::netsim::SimDuration;
use iotlan::{Lab, LabConfig};

fn run(seed: u64) -> (Vec<u8>, String) {
    let mut lab = Lab::new(LabConfig {
        seed,
        idle_duration: SimDuration::from_mins(2),
        interactions: 10,
        with_honeypot: true,
    });
    lab.run_idle();
    lab.run_interactions(SimDuration::from_mins(1));
    let pcap = lab.network.capture.to_pcap();

    // Reports concatenated: figures, discovery stats, payload examples.
    let mut report = String::new();
    report.push_str(&experiments::fig1_device_graph(&lab).render());
    report.push_str(&experiments::fig2_prevalence(&lab, None).render());
    report.push_str(&experiments::fig3_crossval(&lab).render());
    report.push_str(&experiments::sec51_discovery_stats(&lab).render());
    for example in experiments::table5_payloads(&lab) {
        report.push_str(&example.rendered);
    }
    (pcap, report)
}

#[test]
fn same_seed_same_pcap_and_report() {
    // The same-seed-twice check must hold at every worker count: the
    // parallel stages (dataset generation, crossval, entropy) promise
    // bit-identical artifacts whether one thread runs them or eight.
    for threads in [1usize, 2, 8] {
        let (pcap_a, report_a) = iotlan_util::pool::with_threads(threads, || run(1312));
        let (pcap_b, report_b) = iotlan_util::pool::with_threads(threads, || run(1312));
        assert_eq!(
            pcap_a, pcap_b,
            "pcap images diverged for identical seeds (threads={threads})"
        );
        assert_eq!(
            report_a, report_b,
            "reports diverged for identical seeds (threads={threads})"
        );
        assert!(!pcap_a.is_empty() && !report_a.is_empty());
    }
}

#[test]
fn different_seed_different_capture() {
    let (pcap_a, _) = run(1312);
    let (pcap_b, _) = run(1313);
    assert_ne!(pcap_a, pcap_b, "different seeds produced identical captures");
}
