//! Streaming/batch equivalence: the single-pass `iotlan-stream` engine
//! must reproduce the batch pipeline's figure and table outputs exactly —
//! on a real `Lab` capture, at any pcap chunk size (down to one byte), and
//! at any `IOTLAN_THREADS` setting for the sharded paths — plus property
//! suites for the probabilistic sketches' documented guarantees.

use iotlan::classify::FlowTable;
use iotlan::devices::Catalog;
use iotlan::netsim::{Capture, SimDuration};
use iotlan::stream::engine::{stream_capture, stream_captures_sharded, stream_pcaps_sharded};
use iotlan::stream::sketch::{CountMin, Distinct};
use iotlan::stream::{StreamEngine, StreamReport};
use iotlan::{Lab, LabConfig};
use iotlan_util::pool;

/// A small but real lab run: 93 devices idling plus scripted interactions.
/// Built once and shared — the capture is read-only reference data.
fn lab_capture() -> &'static (Capture, Catalog) {
    static LAB: std::sync::OnceLock<(Capture, Catalog)> = std::sync::OnceLock::new();
    LAB.get_or_init(|| {
        let mut lab = Lab::new(LabConfig {
            seed: 21,
            idle_duration: SimDuration::from_mins(2),
            interactions: 10,
            with_honeypot: true,
        });
        lab.run_idle();
        lab.run_interactions(SimDuration::from_secs(30));
        (lab.network.capture.clone(), lab.catalog)
    })
}

/// The batch pipeline's rendered artifacts for `capture`.
fn batch_renders(capture: &Capture, catalog: &Catalog) -> (String, String, String) {
    let table = FlowTable::from_capture(capture);
    (
        iotlan::analysis::graph::build_graph(&table, catalog).render(),
        iotlan::analysis::prevalence::passive_prevalence(&table, catalog).render(),
        iotlan::analysis::responses::render(&iotlan::analysis::responses::discovery_responses(
            &table, catalog,
        )),
    )
}

/// The streaming report's rendered artifacts, through the same batch
/// analysis code paths.
fn report_renders(report: &StreamReport, catalog: &Catalog) -> (String, String, String) {
    (
        report.graph(catalog).render(),
        report.prevalence(catalog).render(),
        iotlan::analysis::responses::render(&report.discovery_response_rows(catalog)),
    )
}

#[test]
fn lab_capture_streams_identically_at_every_chunk_size() {
    let (capture, catalog) = lab_capture();
    let batch = batch_renders(&capture, &catalog);
    let batch_table = FlowTable::from_capture(&capture);
    let batch_periodicity = iotlan::analysis::periodicity::analyze_periodicity(&batch_table);

    // Direct frame-fed path first.
    let report = stream_capture(&capture, &catalog);
    assert_eq!(report.packets, capture.len() as u64);
    assert_eq!(report_renders(&report, &catalog), batch);
    assert!(report.periodicity_exact, "lab-scale keys must stay under EVENT_CAP");
    let streamed_periodicity = report.periodicity();
    assert_eq!(
        streamed_periodicity.groups.len(),
        batch_periodicity.groups.len()
    );
    for (s, b) in streamed_periodicity
        .groups
        .iter()
        .zip(&batch_periodicity.groups)
    {
        assert_eq!(s.key, b.key);
        assert_eq!(s.events, b.events);
        assert_eq!(s.periodic, b.periodic);
        assert_eq!(s.period_secs, b.period_secs);
    }

    // Then the incremental pcap path at 1 B, 4 KiB and whole-file chunks.
    let image = capture.to_pcap();
    for chunk_size in [1usize, 4096, image.len()] {
        let mut engine = StreamEngine::new(&catalog);
        for chunk in image.chunks(chunk_size) {
            engine.push_pcap_chunk(chunk).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.packets, capture.len() as u64, "chunk {chunk_size}");
        assert_eq!(report_renders(&report, &catalog), batch, "chunk {chunk_size}");
    }
}

#[test]
fn sharded_streaming_is_thread_count_invariant() {
    let (capture, catalog) = lab_capture();
    let batch = batch_renders(&capture, &catalog);

    // A single shard is the whole capture: the pooled path must reproduce
    // the batch artifacts exactly at every worker count.
    let whole = vec![capture.clone()];
    for threads in [1usize, 4] {
        let report = pool::with_threads(threads, || stream_captures_sharded(&whole, &catalog));
        assert_eq!(
            report_renders(&report, &catalog),
            batch,
            "IOTLAN_THREADS={threads}"
        );
    }

    // Multi-shard merges (three contiguous slices of the record stream)
    // must be a pure function of the shard list, never the worker count —
    // compare full reports, sketches included, across thread counts.
    let third = capture.len() / 3;
    let ranges = [(0, third), (third, 2 * third), (2 * third, capture.len())];
    let shards: Vec<Capture> = ranges
        .iter()
        .map(|&(start, end)| {
            Capture::from_frames(
                capture
                    .frames_from(start)
                    .take(end - start)
                    .map(|f| (f.time, f.data().to_vec()))
                    .collect(),
            )
        })
        .collect();
    let images: Vec<Vec<u8>> = shards.iter().map(|s| s.to_pcap()).collect();
    let summarize = |report: &StreamReport| {
        (
            report.packets,
            report.flow_keys,
            report_renders(report, &catalog),
            report.peer_pairs.estimate().to_bits(),
            report.port_packets.total(),
        )
    };
    let reference = summarize(&pool::with_threads(1, || {
        stream_captures_sharded(&shards, &catalog)
    }));
    for threads in [1usize, 4] {
        let frame_fed =
            pool::with_threads(threads, || stream_captures_sharded(&shards, &catalog));
        assert_eq!(summarize(&frame_fed), reference, "IOTLAN_THREADS={threads}");
        let pcap_fed = pool::with_threads(threads, || {
            stream_pcaps_sharded(&images, 4096, &catalog).unwrap()
        });
        assert_eq!(summarize(&pcap_fed), reference, "pcap IOTLAN_THREADS={threads}");
    }
}

iotlan_util::props! {
    /// Count-Min never underestimates any key's true count, and the total
    /// is tracked exactly.
    fn count_min_overestimates_only(g) {
        let width = g.int_in(8usize..=256);
        let depth = g.int_in(1usize..=5);
        let mut sketch = CountMin::new(width, depth, g.u64());
        let mut exact: std::collections::HashMap<Vec<u8>, u64> =
            std::collections::HashMap::new();
        let base = g.u64();
        let inserts = g.vec_of(1, 200, |g| {
            // Keys drawn from a small pool so collisions and repeats occur.
            let key = (base ^ g.int_in(0u64..=24)).to_le_bytes().to_vec();
            let weight = g.int_in(1u64..=1000);
            (key, weight)
        });
        for (key, weight) in &inserts {
            sketch.insert_weighted(key, *weight);
            *exact.entry(key.clone()).or_default() += *weight;
        }
        for (key, &count) in &exact {
            assert!(
                sketch.estimate(key) >= count,
                "estimate {} under true count {count}",
                sketch.estimate(key)
            );
        }
        assert_eq!(sketch.total(), exact.values().sum::<u64>());
    }

    /// KMV is exact below k distinct keys and within its documented
    /// relative standard error (1/sqrt(k-2)) above it.
    fn distinct_counter_within_documented_error(g) {
        let k = 256usize;
        let mut sketch = Distinct::new(k, g.u64());
        let base = g.u64();
        let n = g.int_in(1u64..=20_000);
        for i in 0..n {
            let key = (base.wrapping_add(i)).to_le_bytes();
            sketch.insert(&key);
            sketch.insert(&key); // duplicates never count
        }
        let estimate = sketch.estimate();
        if (n as usize) < k {
            assert_eq!(estimate, n as f64, "must be exact below k");
        } else {
            let rse = 1.0 / ((k as f64) - 2.0).sqrt();
            let relative = (estimate - n as f64).abs() / n as f64;
            assert!(
                relative < 6.0 * rse,
                "relative error {relative} exceeds 6x documented RSE {rse}"
            );
        }
    }

    /// Sketch merges are associative (and, for KMV, commutative): shard
    /// grouping can never change a merged estimate.
    fn sketch_merges_are_associative(g) {
        let seed = g.u64();
        let width = g.int_in(8usize..=64);
        let depth = g.int_in(1usize..=4);
        let mut cms: Vec<CountMin> =
            (0..3).map(|_| CountMin::new(width, depth, seed)).collect();
        let mut kmvs: Vec<Distinct> = (0..3).map(|_| Distinct::new(8, seed)).collect();
        for sketch_index in 0..3 {
            let items = g.vec_of(0, 60, |g| g.int_in(0u64..=40));
            for item in items {
                cms[sketch_index].insert(&item.to_le_bytes());
                kmvs[sketch_index].insert(&item.to_le_bytes());
            }
        }
        // ((a + b) + c) == (a + (b + c)), as full-state equality.
        let mut cm_left = cms[0].clone();
        cm_left.merge(&cms[1]);
        cm_left.merge(&cms[2]);
        let mut cm_bc = cms[1].clone();
        cm_bc.merge(&cms[2]);
        let mut cm_right = cms[0].clone();
        cm_right.merge(&cm_bc);
        assert_eq!(cm_left, cm_right);

        let mut kmv_left = kmvs[0].clone();
        kmv_left.merge(&kmvs[1]);
        kmv_left.merge(&kmvs[2]);
        let mut kmv_bc = kmvs[1].clone();
        kmv_bc.merge(&kmvs[2]);
        let mut kmv_right = kmvs[0].clone();
        kmv_right.merge(&kmv_bc);
        assert_eq!(kmv_left, kmv_right);
        let mut kmv_swapped = kmvs[1].clone();
        kmv_swapped.merge(&kmvs[0]);
        let mut kmv_ordered = kmvs[0].clone();
        kmv_ordered.merge(&kmvs[1]);
        assert_eq!(kmv_ordered, kmv_swapped, "KMV union must commute");
    }
}
