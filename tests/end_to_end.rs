//! End-to-end integration: the full pipeline from packet generation through
//! capture, flow assembly, classification, and every analysis stage.

use iotlan::classify::FlowTable;
use iotlan::netsim::SimDuration;
use iotlan::{experiments, Lab, LabConfig};

fn run_lab() -> Lab {
    let mut lab = Lab::new(LabConfig {
        seed: 1234,
        idle_duration: SimDuration::from_mins(8),
        interactions: 30,
        with_honeypot: true,
    });
    lab.run_idle();
    lab.run_interactions(SimDuration::from_mins(1));
    lab
}

// Paper-scale: minutes of simulated traffic through every analysis stage.
// Run explicitly via `scripts/verify.sh` (`cargo test -- --ignored`); too
// slow for the default tier-1 wall-clock budget.
#[test]
#[ignore = "paper-scale; run via scripts/verify.sh"]
fn full_pipeline_produces_all_artifacts() {
    let lab = run_lab();

    // Figure 1.
    let fig1 = experiments::fig1_device_graph(&lab);
    assert!(fig1.connected_devices >= 15);
    assert!(!fig1.graph.edges.is_empty());

    // Figure 2: the protocol ordering must match the paper's ranking —
    // ARP/DHCP near-universal, mDNS > SSDP > TuyaLP.
    let fig2 = experiments::fig2_prevalence(&lab, None);
    let p = &fig2.prevalence;
    assert!(p.passive_rate("DHCP") > 0.9);
    assert!(p.passive_rate("ARP") > 0.5);
    assert!(p.passive_rate("mDNS") > p.passive_rate("SSDP"));
    assert!(p.passive_rate("SSDP") > p.passive_rate("TuyaLP"));
    assert!(p.passive_rate("TuyaLP") >= 4.0 / 93.0);

    // Figure 3: the tools disagree mostly on SSDP.
    let fig3 = experiments::fig3_crossval(&lab);
    assert!(fig3.ssdp_share > 0.8);
    assert!(fig3.crossval.agreement.ndpi_labeled > fig3.crossval.agreement.tshark_labeled);

    // Figure 4: vendor clusters exist and are vendor-pure.
    let fig4 = experiments::fig4_vendor_clusters(&lab);
    for (cluster, vendor_devices) in [
        (&fig4.google, lab.catalog.by_vendor("Google")),
        (&fig4.amazon, lab.catalog.by_vendor("Amazon")),
    ] {
        assert!(!cluster.edges.is_empty());
        let names: std::collections::BTreeSet<&str> =
            vendor_devices.iter().map(|d| d.name.as_str()).collect();
        for (a, b) in cluster.edges.keys() {
            assert!(names.contains(a.as_str()) && names.contains(b.as_str()));
        }
    }

    // Table 1: the signature exposures of the paper.
    use iotlan::analysis::exposure::ExposureType;
    let table1 = experiments::table1_exposure(&lab);
    assert!(table1.exposes("TPLINK_SHP", ExposureType::Geolocation));
    assert!(table1.exposes("TuyaLP", ExposureType::GwId));
    assert!(table1.exposes("mDNS", ExposureType::Mac));
    assert!(table1.exposes("DHCP", ExposureType::Mac));
    assert!(table1.exposes("SSDP", ExposureType::Uuid));

    // Table 4: Echo devices hear from more devices than anyone (9.47 in
    // the paper: the ssdp:all + unicast-ARP pattern).
    let table4 = experiments::table4_responses(&lab);
    let echo = table4.iter().find(|r| r.category == "Amazon Echo");
    assert!(echo.is_some(), "{table4:?}");
    assert!(echo.unwrap().mean_devices_responded >= 1.0);

    // Table 5: payload examples include the proprietary leaks.
    let table5 = experiments::table5_payloads(&lab);
    let protocols: Vec<&str> = table5.iter().map(|e| e.protocol.as_str()).collect();
    assert!(protocols.contains(&"SSDP"));
    assert!(protocols.contains(&"TPLINK_SHP"));
    assert!(protocols.contains(&"TuyaLP"));

    // Appendix D.1: discovery traffic is overwhelmingly periodic.
    let appd1 = experiments::appd1_periodicity(&lab);
    assert!(
        appd1.report.discovery_periodic_fraction() > 0.5,
        "{}",
        appd1.report.discovery_periodic_fraction()
    );
    assert!(appd1.report.periodic_group_count() > 50);
}

#[test]
#[ignore = "paper-scale; run via scripts/verify.sh"]
fn capture_pcap_roundtrip_and_flow_stability() {
    let lab = run_lab();
    // pcap export/import must be byte-faithful.
    let image = lab.network.capture.to_pcap();
    let packets = iotlan::wire::pcap::read_pcap(&image).unwrap();
    assert_eq!(packets.len(), lab.network.capture.len());
    // Reassembling flows from the re-imported packets gives the same table.
    let mut reimported = FlowTable::default();
    for packet in &packets {
        let time = iotlan::netsim::SimTime(
            u64::from(packet.ts_sec) * 1_000_000 + u64::from(packet.ts_usec),
        );
        reimported.add_frame(time, &packet.data);
    }
    let original = lab.flow_table();
    assert_eq!(original.len(), reimported.len());
    assert_eq!(original.total_packets(), reimported.total_packets());
}

#[test]
fn determinism_across_runs() {
    let fingerprint = |seed: u64| {
        let mut lab = Lab::new(LabConfig {
            seed,
            idle_duration: SimDuration::from_mins(4),
            interactions: 10,
            with_honeypot: true,
        });
        lab.run_idle();
        lab.run_interactions(SimDuration::from_secs(30));
        let table = lab.flow_table();
        (
            lab.network.capture.len(),
            table.len(),
            table.total_packets(),
        )
    };
    assert_eq!(fingerprint(77), fingerprint(77));
    assert_ne!(fingerprint(77), fingerprint(78));
}

#[test]
#[ignore = "paper-scale convergence; run via scripts/verify.sh"]
fn five_day_statistics_converge_early() {
    // The §4.1 percentages are rates over devices; a 20-minute capture and
    // a 40-minute capture must broadly agree (the paper's 5 days buys the
    // rare events, not the common rates).
    let rates = |mins: u64| {
        let mut lab = Lab::new(LabConfig {
            seed: 5,
            idle_duration: SimDuration::from_mins(mins),
            interactions: 0,
            with_honeypot: false,
        });
        lab.run_idle();
        let fig2 = experiments::fig2_prevalence(&lab, None);
        (
            fig2.prevalence.passive_rate("mDNS"),
            fig2.prevalence.passive_rate("SSDP"),
        )
    };
    let (mdns_20, ssdp_20) = rates(20);
    let (mdns_40, ssdp_40) = rates(40);
    assert!((mdns_20 - mdns_40).abs() < 0.10, "{mdns_20} vs {mdns_40}");
    assert!((ssdp_20 - ssdp_40).abs() < 0.10, "{ssdp_20} vs {ssdp_40}");
}
