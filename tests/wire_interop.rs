//! Cross-crate wire interop tests: payloads built by the device models are
//! parseable by every consumer (classifier, honeypot, phone, analysis) and
//! survive the pcap round trip — the "would Wireshark agree?" suite.

use iotlan::classify::truth;
use iotlan::classify::FlowTable;
use iotlan::netsim::SimDuration;
use iotlan::wire::{dns, pcap, ssdp};
use iotlan::{Lab, LabConfig};
use std::collections::BTreeSet;

fn lab_capture() -> Lab {
    let mut lab = Lab::new(LabConfig {
        seed: 2024,
        idle_duration: SimDuration::from_mins(5),
        interactions: 10,
        with_honeypot: true,
    });
    lab.run_idle();
    lab.run_interactions(SimDuration::from_secs(20));
    lab
}

/// Every frame in a capture must be structurally parseable down to the
/// transport layer (or be a known L2 form) — no device model emits bytes
/// our own stack cannot dissect.
#[test]
fn all_emitted_frames_dissect() {
    let lab = lab_capture();
    let mut undissected = 0usize;
    for frame in lab.network.capture.frames() {
        if iotlan::netsim::stack::dissect(frame.data()).is_none() {
            // 802.3/LLC frames have no IP layer and dissect to OtherEther…
            // dissect() returns Some(OtherEther) for them, so None means a
            // genuinely broken frame.
            undissected += 1;
        }
    }
    assert_eq!(undissected, 0, "{undissected} frames failed to dissect");
}

/// Every mDNS datagram in the capture parses as a DNS message; every SSDP
/// datagram parses as an SSDP message. (The strict-parser pass the paper's
/// manual validation performed.)
#[test]
fn discovery_payloads_strictly_valid() {
    let lab = lab_capture();
    let table = FlowTable::from_capture(&lab.network.capture);
    let mut mdns = 0;
    let mut ssdp_count = 0;
    for flow in &table.flows {
        if flow.key.dst_port == 5353 || flow.key.src_port == 5353 {
            for payload in &flow.payload_samples {
                dns::Message::parse(payload).expect("mDNS payload must parse");
                mdns += 1;
            }
        }
        if flow.key.dst_port == 1900 || flow.key.src_port == 1900 {
            for payload in &flow.payload_samples {
                ssdp::Message::parse(payload).expect("SSDP payload must parse");
                ssdp_count += 1;
            }
        }
    }
    assert!(mdns > 20, "mdns payloads {mdns}");
    assert!(ssdp_count > 10, "ssdp payloads {ssdp_count}");
}

/// The protocol diversity the paper reports: ≥15 distinct ground-truth
/// labels in a single idle capture (§4.1 found 21 over five days).
#[test]
fn protocol_diversity() {
    let lab = lab_capture();
    let table = FlowTable::from_capture(&lab.network.capture);
    let labels: BTreeSet<&str> = table.flows.iter().map(truth::label_flow).collect();
    assert!(
        labels.len() >= 15,
        "only {} labels: {labels:?}",
        labels.len()
    );
    for expected in [
        "ARP", "DHCP", "DHCPv6", "EAPOL", "ICMP", "ICMPv6", "IGMP", "mDNS", "SSDP", "TLS",
        "TPLINK_SHP", "TuyaLP", "LIFX", "UNKNOWN-L3",
    ] {
        assert!(labels.contains(expected), "missing {expected}: {labels:?}");
    }
}

/// pcap export is byte-faithful and per-MAC splits partition correctly.
#[test]
fn per_mac_pcap_partition() {
    let lab = lab_capture();
    let whole = pcap::read_pcap(&lab.network.capture.to_pcap()).unwrap();
    // Sum of per-MAC unicast frames + shared multicast must cover the
    // whole capture; test a sample device's file is a strict subset.
    let echo = lab.catalog.find("Amazon Echo Spot").unwrap();
    let per_mac = pcap::read_pcap(&lab.network.capture.to_pcap_for_mac(echo.mac)).unwrap();
    assert!(!per_mac.is_empty());
    assert!(per_mac.len() < whole.len());
    let whole_set: BTreeSet<&[u8]> = whole.iter().map(|p| p.data.as_slice()).collect();
    for packet in &per_mac {
        assert!(whole_set.contains(packet.data.as_slice()));
    }
}

/// The XID/LLC association probes appear as non-IP broadcast traffic —
/// the Figure 2 "XID/LLC" bar — and classify as UNKNOWN-L3.
#[test]
fn xid_llc_probes_present() {
    let lab = lab_capture();
    let table = FlowTable::from_capture(&lab.network.capture);
    let xid_flows = table
        .flows
        .iter()
        .filter(|f| {
            matches!(f.key.transport, iotlan::classify::flow::Transport::L2(len) if len < 0x600)
        })
        .count();
    // 84% of 93 devices emit one at association.
    assert!(xid_flows >= 70, "xid flows {xid_flows}");
}

/// The Appendix C.1 filter keeps the entire testbed capture: everything in
/// the lab is local, and the three keep-reasons all occur.
#[test]
fn local_filter_covers_capture() {
    use iotlan::classify::localfilter::{filter_capture, KeepReason, LocalSubnet};
    let lab = lab_capture();
    let kept = filter_capture(&lab.network.capture, LocalSubnet::lab_default());
    assert_eq!(
        kept.len(),
        lab.network.capture.len(),
        "all lab traffic is local"
    );
    let mut reasons = std::collections::BTreeMap::new();
    for (_, reason) in &kept {
        *reasons
            .entry(match reason {
                KeepReason::LocalIpUnicast => "unicast-ip",
                KeepReason::MulticastOrBroadcast => "mcast",
                KeepReason::NonIpUnicast => "non-ip",
            })
            .or_insert(0usize) += 1;
    }
    assert!(reasons["unicast-ip"] > 0);
    assert!(reasons["mcast"] > 0);
    assert!(reasons["non-ip"] > 0, "{reasons:?}");

    // And it rejects a synthetic Internet-bound frame.
    use iotlan::classify::localfilter::classify_frame;
    use iotlan::netsim::stack::{self, Endpoint};
    let device = lab.catalog.find("Google Nest Hub").unwrap();
    let cloud = Endpoint {
        mac: iotlan::netsim::router::GATEWAY_MAC,
        ip: std::net::Ipv4Addr::new(8, 8, 8, 8),
    };
    let frame = stack::udp_unicast(
        Endpoint {
            mac: device.mac,
            ip: device.ip,
        },
        cloud,
        40000,
        443,
        b"cloud checkin",
    );
    assert_eq!(classify_frame(&frame, LocalSubnet::lab_default()), None);
}
