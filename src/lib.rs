pub use iotlan_core::*;
